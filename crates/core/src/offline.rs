//! Offline training (step 1 of the Darwin workflow, §4.1 / Appendix A.1).
//!
//! Given a corpus of historical traces, the trainer:
//!
//! 1. **Evaluates every expert on every trace** with the HOC simulator,
//!    recording per-request hit bits, the objective reward, and the hit rate.
//! 2. **Extracts features** per trace (15-entry vector + bucketized size
//!    distribution) and computes, for every ordered expert pair, the
//!    conditional hit probabilities P(E_j hit | E_i hit/miss) from the joint
//!    hit bitsets.
//! 3. **Clusters** traces on normalized features (k-means) and associates
//!    each cluster with its *best expert set*: the union over member traces
//!    of the experts whose reward is within θ% of the trace's best.
//! 4. **Trains the cross-expert predictors**: for each ordered pair (i, j)
//!    that co-occurs in some cluster set (or all pairs when configured), a
//!    1-hidden-layer net maps extended features → the two conditionals.
//!
//! Expert evaluation is embarrassingly parallel and fans out through the
//! deterministic [`darwin_parallel`] engine at two levels — traces across the
//! corpus and experts within a trace (the inner sweep runs inline when the
//! outer one is already parallel). Results are bitwise identical at any
//! thread count: every work item derives its seed and output slot from its
//! index alone. The paper notes CDN servers are not CPU-bound and offline
//! training is periodic background work.

use crate::bits::Bitset;
use crate::expert::ExpertGrid;
use crate::model::{DarwinModel, PairPredictor};
use darwin_cache::{CacheMetrics, EvictionKind, HocSim, Objective};
use darwin_cluster::{KMeans, Normalizer};
use darwin_features::{FeatureExtractor, FeatureVector, SizeDistribution};
use darwin_nn::{Mlp, OutputActivation, TrainConfig};
use darwin_trace::Trace;
use serde::{Deserialize, Serialize};

/// Configuration for [`OfflineTrainer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineConfig {
    /// The expert action space.
    pub grid: ExpertGrid,
    /// The objective rewards are computed under.
    pub objective: Objective,
    /// HOC capacity for expert evaluation (bytes).
    pub hoc_bytes: u64,
    /// HOC eviction policy.
    pub eviction: EvictionKind,
    /// θ: experts within this percentage of a trace's best reward join the
    /// trace's best-expert set (paper default 1%).
    pub theta_percent: f64,
    /// Number of k-means clusters; 0 = auto (≈ √#traces, min 2).
    pub n_clusters: usize,
    /// Train predictors for *all* ordered pairs instead of only pairs that
    /// co-occur in a cluster set (needed by the Fig 5c experiment over all
    /// 1260 pairs).
    pub train_all_pairs: bool,
    /// Hidden width of the predictor nets.
    pub nn_hidden: usize,
    /// Predictor training hyper-parameters.
    pub nn_train: TrainConfig,
    /// Use the size-distribution extension in predictor inputs (§4.1 says
    /// it sharpens the conditional estimates; the ablation experiment turns
    /// it off).
    pub predictor_use_size_dist: bool,
    /// Extract features from only the first this-many requests of each
    /// trace (0 = full trace). Setting it to the online warm-up length makes
    /// training see exactly the feature estimates the online lookup will
    /// produce — important below the paper's scale, where short warm-ups
    /// systematically under-estimate the higher-order IAT/stack-distance
    /// entries relative to full-trace features.
    pub feature_prefix_requests: usize,
    /// Master seed (clustering init, net init).
    pub seed: u64,
    /// Worker threads for expert evaluation; 0 = available parallelism.
    pub threads: usize,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self {
            grid: ExpertGrid::paper_grid(),
            objective: Objective::HocOhr,
            hoc_bytes: 100 * 1024 * 1024,
            eviction: EvictionKind::Lru,
            theta_percent: 1.0,
            n_clusters: 0,
            train_all_pairs: false,
            nn_hidden: 8,
            nn_train: TrainConfig { epochs: 300, ..TrainConfig::default() },
            predictor_use_size_dist: true,
            feature_prefix_requests: 0,
            seed: 0,
            threads: 0,
        }
    }
}

/// Everything measured about one trace during offline evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluatedTrace {
    /// 15-entry base feature vector (clustering input).
    pub features: FeatureVector,
    /// Base features + size-distribution buckets (predictor input).
    pub extended: FeatureVector,
    /// Bucketized size distribution.
    pub size_dist: SizeDistribution,
    /// Full cache metrics per expert (lets any objective's rewards be
    /// derived without re-simulating).
    pub metrics: Vec<CacheMetrics>,
    /// Objective reward per expert (under the trainer's objective).
    pub rewards: Vec<f64>,
    /// HOC hit rate per expert.
    pub hit_rates: Vec<f64>,
    /// `cond[i][j] = (P(E_j hit | E_i hit), P(E_j hit | E_i miss))`.
    pub cond: Vec<Vec<(f64, f64)>>,
}

impl EvaluatedTrace {
    /// Index of the best expert by reward.
    pub fn best_expert(&self) -> usize {
        self.rewards
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty expert grid")
    }

    /// Trace-level best expert set: experts within θ% of the best reward.
    pub fn best_expert_set(&self, theta_percent: f64) -> Vec<usize> {
        best_set(&self.rewards, theta_percent)
    }

    /// Rewards recomputed under an arbitrary objective (from the stored
    /// per-expert metrics) — lets one evaluation pass serve the OHR, BMR and
    /// combined-objective experiments.
    pub fn rewards_under(&self, objective: Objective) -> Vec<f64> {
        self.metrics.iter().map(|m| objective.reward(m)).collect()
    }
}

/// Experts within θ% of the best reward (shared by trace- and cluster-level
/// set formation).
pub fn best_set(rewards: &[f64], theta_percent: f64) -> Vec<usize> {
    let best = rewards.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let floor = best - (theta_percent / 100.0) * best.abs();
    (0..rewards.len()).filter(|&e| rewards[e] >= floor).collect()
}

/// The offline trainer.
#[derive(Debug, Clone)]
pub struct OfflineTrainer {
    cfg: OfflineConfig,
}

impl OfflineTrainer {
    /// Trainer with the given configuration.
    pub fn new(cfg: OfflineConfig) -> Self {
        assert!(cfg.theta_percent >= 0.0, "theta must be non-negative");
        assert!(cfg.nn_hidden > 0, "predictor hidden width must be positive");
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &OfflineConfig {
        &self.cfg
    }

    /// Evaluates one trace: features, per-expert rewards/hit rates, and
    /// cross-expert conditional probabilities.
    pub fn evaluate_trace(&self, trace: &Trace) -> EvaluatedTrace {
        let n_experts = self.cfg.grid.len();
        let n = trace.len();

        // Features (over the configured prefix, matching the online
        // warm-up's view when `feature_prefix_requests` is set).
        let mut fx = FeatureExtractor::paper_default();
        let prefix = if self.cfg.feature_prefix_requests == 0 {
            trace.len()
        } else {
            self.cfg.feature_prefix_requests.min(trace.len())
        };
        for r in trace.requests()[..prefix].iter() {
            fx.observe(r);
        }
        let features = fx.features();
        let extended = fx.extended_features();
        let (_, size_dist) = fx.finish();

        // Per-expert simulation with per-request hit bits. Each expert's
        // simulation is independent, so the sweep fans out; when this trace
        // is itself a work item of `evaluate_corpus`, the engine runs the
        // inner sweep inline instead of oversubscribing.
        let per_expert = darwin_parallel::par_run(self.cfg.threads, n_experts, |e| {
            let expert = self.cfg.grid.get(e);
            let mut sim = HocSim::new(self.cfg.hoc_bytes, self.cfg.eviction, expert.policy);
            let bools = sim.run_trace_recording(trace);
            (Bitset::from_bools(bools), sim.metrics())
        });
        let mut hits: Vec<Bitset> = Vec::with_capacity(n_experts);
        let mut metrics = Vec::with_capacity(n_experts);
        let mut rewards = Vec::with_capacity(n_experts);
        let mut hit_rates = Vec::with_capacity(n_experts);
        for (bits, m) in per_expert {
            rewards.push(self.cfg.objective.reward(&m));
            hit_rates.push(m.hoc_ohr());
            metrics.push(m);
            hits.push(bits);
        }

        // Pairwise conditionals from bit intersections.
        let mut cond = vec![vec![(0.0, 0.0); n_experts]; n_experts];
        for i in 0..n_experts {
            let hi = hits[i].count_ones();
            let mi = n - hi;
            for j in 0..n_experts {
                let hj = hits[j].count_ones();
                let marginal_j = if n == 0 { 0.0 } else { hj as f64 / n as f64 };
                let both = hits[i].and_count(&hits[j]);
                let j_given_i_miss_count = hits[i].andnot_count(&hits[j]);
                let p_hh = if hi == 0 { marginal_j } else { both as f64 / hi as f64 };
                let p_hm = if mi == 0 { marginal_j } else { j_given_i_miss_count as f64 / mi as f64 };
                cond[i][j] = (p_hh, p_hm);
            }
        }

        EvaluatedTrace { features, extended, size_dist, metrics, rewards, hit_rates, cond }
    }

    /// Evaluates a corpus, fanning traces out across worker threads.
    /// Results are bitwise identical at any thread count.
    pub fn evaluate_corpus(&self, traces: &[Trace]) -> Vec<EvaluatedTrace> {
        darwin_parallel::par_map(self.cfg.threads, traces, |t| self.evaluate_trace(t))
    }

    /// Clusters evaluations and forms per-cluster best expert sets for an
    /// arbitrary θ and objective *without* training predictors — the cheap
    /// path used by the clustering-effectiveness experiments (Fig 5b, 9, 11).
    pub fn cluster_expert_sets(
        &self,
        evals: &[EvaluatedTrace],
        theta_percent: f64,
        objective: Objective,
    ) -> (Vec<usize>, Vec<Vec<usize>>) {
        assert!(!evals.is_empty(), "no evaluations supplied");
        let base_rows: Vec<Vec<f64>> = evals.iter().map(|e| e.features.values().to_vec()).collect();
        let base_norm = Normalizer::fit(&base_rows);
        let k = if self.cfg.n_clusters > 0 {
            self.cfg.n_clusters
        } else {
            ((evals.len() as f64).sqrt().round() as usize).max(2)
        };
        let normalized: Vec<Vec<f64>> = base_rows.iter().map(|r| base_norm.transform(r)).collect();
        let kmeans = KMeans::fit(&normalized, k, 200, self.cfg.seed);
        let mut assignment = Vec::with_capacity(evals.len());
        let mut sets: Vec<Vec<usize>> = vec![Vec::new(); kmeans.k()];
        for (row, ev) in normalized.iter().zip(evals) {
            let c = kmeans.assign(row);
            assignment.push(c);
            let rewards = ev.rewards_under(objective);
            for e in best_set(&rewards, theta_percent) {
                if !sets[c].contains(&e) {
                    sets[c].push(e);
                }
            }
        }
        for set in &mut sets {
            set.sort_unstable();
        }
        (assignment, sets)
    }

    /// Full offline training: evaluate, cluster, form expert sets, train
    /// predictors, and assemble the model.
    pub fn train(&self, traces: &[Trace]) -> DarwinModel {
        assert!(!traces.is_empty(), "offline training needs at least one trace");
        let evals = self.evaluate_corpus(traces);
        self.train_from_evaluations(&evals)
    }

    /// Training entry point that reuses prior evaluations (the experiments
    /// evaluate once and train many model variants).
    pub fn train_from_evaluations(&self, evals: &[EvaluatedTrace]) -> DarwinModel {
        assert!(!evals.is_empty(), "no evaluations supplied");
        let n_experts = self.cfg.grid.len();

        // Normalizers.
        let base_rows: Vec<Vec<f64>> = evals.iter().map(|e| e.features.values().to_vec()).collect();
        let ext_rows: Vec<Vec<f64>> = evals.iter().map(|e| e.extended.values().to_vec()).collect();
        let base_norm = Normalizer::fit(&base_rows);
        let ext_norm = Normalizer::fit(&ext_rows);

        // Clustering.
        let k = if self.cfg.n_clusters > 0 {
            self.cfg.n_clusters
        } else {
            ((evals.len() as f64).sqrt().round() as usize).max(2)
        };
        let normalized: Vec<Vec<f64>> = base_rows.iter().map(|r| base_norm.transform(r)).collect();
        let kmeans = KMeans::fit(&normalized, k, 200, self.cfg.seed);

        // Cluster-level best expert sets (union of member trace sets),
        // under the trainer's objective (recomputed from stored metrics so
        // the same evaluations serve every objective).
        let mut cluster_sets: Vec<Vec<usize>> = vec![Vec::new(); kmeans.k()];
        for (row, ev) in normalized.iter().zip(evals) {
            let c = kmeans.assign(row);
            let rewards = ev.rewards_under(self.cfg.objective);
            for e in best_set(&rewards, self.cfg.theta_percent) {
                if !cluster_sets[c].contains(&e) {
                    cluster_sets[c].push(e);
                }
            }
        }
        for set in &mut cluster_sets {
            set.sort_unstable();
            if set.is_empty() {
                // A cluster with no member traces (k-means re-seeding corner
                // case): fall back to the full grid.
                set.extend(0..n_experts);
            }
        }

        // Which ordered pairs need predictors?
        let mut need = vec![vec![false; n_experts]; n_experts];
        if self.cfg.train_all_pairs {
            for (i, row) in need.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell = i != j;
                }
            }
        } else {
            for set in &cluster_sets {
                for &i in set {
                    for &j in set {
                        if i != j {
                            need[i][j] = true;
                        }
                    }
                }
            }
        }

        // Fallback conditionals: corpus means per pair.
        let mut fallback = vec![vec![(0.0, 0.0); n_experts]; n_experts];
        for (i, row) in fallback.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let (mut shh, mut shm) = (0.0, 0.0);
                for ev in evals {
                    shh += ev.cond[i][j].0;
                    shm += ev.cond[i][j].1;
                }
                *cell = (shh / evals.len() as f64, shm / evals.len() as f64);
            }
        }

        // Train predictors. The ablation flag swaps the extended input for
        // the base features (no size-distribution buckets).
        let (pred_rows, pred_norm) = if self.cfg.predictor_use_size_dist {
            (&ext_rows, ext_norm)
        } else {
            (&base_rows, Normalizer::fit(&base_rows))
        };
        let ext_normalized: Vec<Vec<f64>> = pred_rows.iter().map(|r| pred_norm.transform(r)).collect();
        let mut predictors: Vec<Vec<Option<PairPredictor>>> =
            (0..n_experts).map(|_| (0..n_experts).map(|_| None).collect()).collect();
        let pairs: Vec<(usize, usize)> = (0..n_experts)
            .flat_map(|i| (0..n_experts).map(move |j| (i, j)))
            .filter(|&(i, j)| need[i][j])
            .collect();
        let trained = self.train_pairs(&pairs, &ext_normalized, evals);
        for ((i, j), net) in pairs.into_iter().zip(trained) {
            predictors[i][j] = Some(PairPredictor { net });
        }

        // Per-expert corpus-mean hit rates (online marginal bootstrap).
        let mut mean_hit_rates = vec![0.0; n_experts];
        for ev in evals {
            for (m, &h) in mean_hit_rates.iter_mut().zip(&ev.hit_rates) {
                *m += h;
            }
        }
        mean_hit_rates.iter_mut().for_each(|m| *m /= evals.len() as f64);

        DarwinModel::new(
            self.cfg.grid.clone(),
            self.cfg.objective,
            base_norm,
            pred_norm,
            kmeans,
            cluster_sets,
            predictors,
            fallback,
            mean_hit_rates,
            self.cfg.theta_percent,
        )
    }

    /// Trains one net per pair (parallel across pairs; each pair's net is
    /// seeded from the pair indices, so results are thread-count-invariant).
    fn train_pairs(
        &self,
        pairs: &[(usize, usize)],
        ext_normalized: &[Vec<f64>],
        evals: &[EvaluatedTrace],
    ) -> Vec<Mlp> {
        let n_in = ext_normalized.first().map(|r| r.len()).unwrap_or(1);
        darwin_parallel::par_map(self.cfg.threads, pairs, |&(i, j)| {
            let data: Vec<(Vec<f64>, Vec<f64>)> = ext_normalized
                .iter()
                .zip(evals)
                .map(|(x, ev)| {
                    let (p_hh, p_hm) = ev.cond[i][j];
                    (x.clone(), vec![p_hh, p_hm])
                })
                .collect();
            let seed =
                self.cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add((i * 1000 + j) as u64);
            let mut net = Mlp::new(n_in, self.cfg.nn_hidden, 2, OutputActivation::Sigmoid, seed);
            net.train(&data, &self.cfg.nn_train);
            net
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::Expert;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn tiny_cfg() -> OfflineConfig {
        OfflineConfig {
            grid: ExpertGrid::new(vec![
                Expert::new(1, 20),
                Expert::new(1, 500),
                Expert::new(5, 20),
                Expert::new(5, 500),
            ]),
            hoc_bytes: 2 * 1024 * 1024,
            nn_train: TrainConfig { epochs: 60, ..TrainConfig::default() },
            n_clusters: 2,
            ..OfflineConfig::default()
        }
    }

    fn corpus(n: usize, len: usize) -> Vec<Trace> {
        (0..n)
            .map(|i| {
                let share = i as f64 / (n - 1).max(1) as f64;
                TraceGenerator::new(
                    MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), share),
                    100 + i as u64,
                )
                .generate(len)
            })
            .collect()
    }

    #[test]
    fn evaluate_trace_produces_consistent_shapes() {
        let trainer = OfflineTrainer::new(tiny_cfg());
        let t = corpus(1, 20_000).pop().unwrap();
        let ev = trainer.evaluate_trace(&t);
        assert_eq!(ev.rewards.len(), 4);
        assert_eq!(ev.hit_rates.len(), 4);
        assert_eq!(ev.cond.len(), 4);
        assert_eq!(ev.features.len(), 15);
        assert_eq!(ev.extended.len(), 22);
        assert!(ev.hit_rates.iter().all(|&h| (0.0..=1.0).contains(&h)));
    }

    #[test]
    fn conditionals_are_valid_probabilities() {
        let trainer = OfflineTrainer::new(tiny_cfg());
        let t = corpus(1, 20_000).pop().unwrap();
        let ev = trainer.evaluate_trace(&t);
        for row in &ev.cond {
            for &(hh, hm) in row {
                assert!((0.0..=1.0).contains(&hh));
                assert!((0.0..=1.0).contains(&hm));
            }
        }
        // Self-conditionals are degenerate: P(Ei hit | Ei hit) = 1 when any
        // hits occurred; P(Ei hit | Ei miss) = 0 when any miss occurred.
        for i in 0..4 {
            if ev.hit_rates[i] > 0.0 {
                assert!((ev.cond[i][i].0 - 1.0).abs() < 1e-12);
            }
            if ev.hit_rates[i] < 1.0 {
                assert!(ev.cond[i][i].1.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn consistency_marginal_decomposition() {
        // P(Ej hit) = P(Ej|Ei hit)·P(Ei hit) + P(Ej|Ei miss)·P(Ei miss).
        let trainer = OfflineTrainer::new(tiny_cfg());
        let t = corpus(1, 20_000).pop().unwrap();
        let ev = trainer.evaluate_trace(&t);
        for i in 0..4 {
            for j in 0..4 {
                let (hh, hm) = ev.cond[i][j];
                let pi = ev.hit_rates[i];
                let recomposed = hh * pi + hm * (1.0 - pi);
                assert!(
                    (recomposed - ev.hit_rates[j]).abs() < 1e-9,
                    "pair ({i},{j}): {recomposed} vs {}",
                    ev.hit_rates[j]
                );
            }
        }
    }

    #[test]
    fn best_expert_set_contains_best() {
        let trainer = OfflineTrainer::new(tiny_cfg());
        let t = corpus(1, 20_000).pop().unwrap();
        let ev = trainer.evaluate_trace(&t);
        let set = ev.best_expert_set(1.0);
        assert!(set.contains(&ev.best_expert()));
        // Larger θ never shrinks the set.
        let set5 = ev.best_expert_set(5.0);
        assert!(set5.len() >= set.len());
        assert!(set.iter().all(|e| set5.contains(e)));
    }

    #[test]
    fn train_produces_model_with_cluster_sets() {
        let trainer = OfflineTrainer::new(tiny_cfg());
        let traces = corpus(6, 15_000);
        let model = trainer.train(&traces);
        assert_eq!(model.grid().len(), 4);
        assert!(model.num_clusters() >= 2);
        for c in 0..model.num_clusters() {
            let set = model.expert_set(c);
            assert!(!set.is_empty());
            assert!(set.iter().all(|&e| e < 4));
        }
    }

    #[test]
    fn model_predicts_reasonable_conditionals() {
        let trainer = OfflineTrainer::new(tiny_cfg());
        let traces = corpus(6, 15_000);
        let evals = trainer.evaluate_corpus(&traces);
        let model = trainer.train_from_evaluations(&evals);
        // On a training trace, predicted conditionals should be in [0,1] and
        // not wildly off the measured values.
        let ev = &evals[0];
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let (p_hh, p_hm) = model.conditionals(i, j, &ev.extended);
                assert!((0.0..=1.0).contains(&p_hh));
                assert!((0.0..=1.0).contains(&p_hm));
            }
        }
    }

    #[test]
    fn corpus_evaluation_matches_single_trace_evaluation() {
        let trainer = OfflineTrainer::new(OfflineConfig { threads: 2, ..tiny_cfg() });
        let traces = corpus(3, 8_000);
        let parallel = trainer.evaluate_corpus(&traces);
        for (t, ev) in traces.iter().zip(&parallel) {
            let single = trainer.evaluate_trace(t);
            assert_eq!(single.rewards, ev.rewards);
            assert_eq!(single.hit_rates, ev.hit_rates);
        }
    }

    /// The engine's core guarantee: evaluation results are bitwise identical
    /// whatever the worker count, including the cross-expert conditionals.
    #[test]
    fn corpus_evaluation_is_thread_count_invariant() {
        let traces = corpus(4, 8_000);
        let eval_at = |threads: usize| {
            OfflineTrainer::new(OfflineConfig { threads, ..tiny_cfg() }).evaluate_corpus(&traces)
        };
        let one = eval_at(1);
        let eight = eval_at(8);
        assert_eq!(one.len(), eight.len());
        for (a, b) in one.iter().zip(&eight) {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.rewards), bits(&b.rewards));
            assert_eq!(bits(&a.hit_rates), bits(&b.hit_rates));
            assert_eq!(bits(a.features.values()), bits(b.features.values()));
            for (ra, rb) in a.cond.iter().zip(&b.cond) {
                for (&(hh_a, hm_a), &(hh_b, hm_b)) in ra.iter().zip(rb) {
                    assert_eq!(hh_a.to_bits(), hh_b.to_bits());
                    assert_eq!(hm_a.to_bits(), hm_b.to_bits());
                }
            }
        }
    }

    /// Trained models are also thread-count-invariant: per-pair nets seed
    /// from pair indices, never from work distribution.
    #[test]
    fn training_is_thread_count_invariant() {
        let traces = corpus(4, 6_000);
        let small = OfflineConfig {
            nn_train: TrainConfig { epochs: 10, ..TrainConfig::default() },
            ..tiny_cfg()
        };
        let evals =
            OfflineTrainer::new(OfflineConfig { threads: 1, ..small.clone() }).evaluate_corpus(&traces);
        let model_1 = OfflineTrainer::new(OfflineConfig { threads: 1, ..small.clone() })
            .train_from_evaluations(&evals);
        let model_8 =
            OfflineTrainer::new(OfflineConfig { threads: 8, ..small }).train_from_evaluations(&evals);
        let probe = &evals[0].extended;
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let (hh_1, hm_1) = model_1.conditionals(i, j, probe);
                let (hh_8, hm_8) = model_8.conditionals(i, j, probe);
                assert_eq!(hh_1.to_bits(), hh_8.to_bits(), "pair ({i},{j})");
                assert_eq!(hm_1.to_bits(), hm_8.to_bits(), "pair ({i},{j})");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::expert::Expert;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
    use proptest::prelude::*;

    fn trainer(theta: f64, clusters: usize) -> OfflineTrainer {
        OfflineTrainer::new(OfflineConfig {
            grid: ExpertGrid::new(vec![
                Expert::new(1, 20),
                Expert::new(1, 500),
                Expert::new(5, 20),
                Expert::new(5, 500),
            ]),
            hoc_bytes: 1024 * 1024,
            nn_train: TrainConfig { epochs: 2, ..TrainConfig::default() },
            n_clusters: clusters,
            theta_percent: theta,
            ..OfflineConfig::default()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// For arbitrary small corpora: every cluster set is a non-empty
        /// subset of the grid, every trace-level best expert is covered by
        /// its own cluster's set, and the reward decomposition identity
        /// P(Ej) = P(Ej|Ei hit)P(Ei) + P(Ej|Ei miss)(1-P(Ei)) holds.
        #[test]
        fn offline_invariants(
            seeds in proptest::collection::vec(0u64..10_000, 2..5),
            theta in 0.5f64..5.0,
        ) {
            let traces: Vec<_> = seeds
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let share = (i as f64 / seeds.len() as f64).min(1.0);
                    TraceGenerator::new(
                        MixSpec::two_class(
                            TrafficClass::image(),
                            TrafficClass::download(),
                            share,
                        ),
                        s,
                    )
                    .generate(4_000)
                })
                .collect();
            let tr = trainer(theta, 2);
            let evals = tr.evaluate_corpus(&traces);
            for ev in &evals {
                // Decomposition identity per pair.
                for i in 0..4 {
                    for j in 0..4 {
                        let (hh, hm) = ev.cond[i][j];
                        let p = ev.hit_rates[i];
                        let recomposed = hh * p + hm * (1.0 - p);
                        prop_assert!((recomposed - ev.hit_rates[j]).abs() < 1e-9);
                    }
                }
                // The best expert set always includes the best expert.
                let set = ev.best_expert_set(theta);
                prop_assert!(set.contains(&ev.best_expert()));
            }
            let model = tr.train_from_evaluations(&evals);
            for c in 0..model.num_clusters() {
                let set = model.expert_set(c);
                prop_assert!(!set.is_empty());
                prop_assert!(set.iter().all(|&e| e < 4));
            }
            // Every training trace's cluster covers one of its near-best
            // experts.
            for ev in &evals {
                let c = model.lookup_cluster(&ev.features);
                let near = ev.best_expert_set(theta.max(1.0) * 2.0);
                prop_assert!(
                    near.iter().any(|e| model.expert_set(c).contains(e)),
                    "cluster {} misses all near-best experts", c
                );
            }
        }
    }
}
