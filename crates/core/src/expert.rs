//! Experts: the admission policies Darwin selects among.
//!
//! "In Darwin, each expert is characterized by a tuple (f, s) of frequency
//! and size thresholds, and promotes to HOC all objects that occur more than
//! f times and … of size lesser than s. Darwin can be trivially extended to
//! include other knobs" (§4). The evaluation's static grid is f ∈ 2..=7 ×
//! s ∈ {10, 20, 50, 100, 500, 1000} KB (36 experts, §6 "Baselines"), and the
//! three-knob extension adds a recency threshold (Appendix A.3, Fig 11:
//! 6 frequencies × 2 sizes × 3 recencies).

use darwin_cache::ThresholdPolicy;
use serde::{Deserialize, Serialize};

/// An HOC admission expert. Thin, copyable wrapper over the threshold policy
/// it deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Expert {
    /// The underlying (f, s[, r]) policy.
    pub policy: ThresholdPolicy,
}

impl Expert {
    /// Two-knob expert: frequency threshold `f`, size threshold `s_kb` in KB.
    pub fn new(f: u32, s_kb: u64) -> Self {
        Self { policy: ThresholdPolicy::new(f, s_kb * 1024) }
    }

    /// Three-knob expert with a recency threshold in seconds.
    pub fn with_recency(f: u32, s_kb: u64, r_secs: u64) -> Self {
        Self { policy: ThresholdPolicy::with_recency(f, s_kb * 1024, r_secs * 1_000_000) }
    }

    /// Frequency threshold f.
    pub fn f(&self) -> u32 {
        self.policy.freq_threshold
    }

    /// Size threshold s in bytes.
    pub fn s_bytes(&self) -> u64 {
        self.policy.size_threshold
    }

    /// Label like `f2s100` (matching Table 2's row names).
    pub fn label(&self) -> String {
        use darwin_cache::AdmissionPolicy;
        let p = self.policy;
        p.label()
    }
}

/// A named set of experts (the action space handed to Darwin).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertGrid {
    experts: Vec<Expert>,
}

impl ExpertGrid {
    /// Wraps an explicit expert list (order defines expert indices).
    pub fn new(experts: Vec<Expert>) -> Self {
        assert!(!experts.is_empty(), "at least one expert required");
        Self { experts }
    }

    /// The paper's 36-expert evaluation grid:
    /// f ∈ {2..7} × s ∈ {10, 20, 50, 100, 500, 1000} KB.
    pub fn paper_grid() -> Self {
        let mut experts = Vec::with_capacity(36);
        for f in 2..=7u32 {
            for &s in &[10u64, 20, 50, 100, 500, 1000] {
                experts.push(Expert::new(f, s));
            }
        }
        Self::new(experts)
    }

    /// The paper grid with size thresholds scaled by `factor` ("we scale up
    /// the size thresholds for the larger cache sizes", §6).
    pub fn paper_grid_scaled(factor: u64) -> Self {
        let mut experts = Vec::with_capacity(36);
        for f in 2..=7u32 {
            for &s in &[10u64, 20, 50, 100, 500, 1000] {
                experts.push(Expert::new(f, s * factor));
            }
        }
        Self::new(experts)
    }

    /// The three-knob grid of Fig 11: 6 frequencies × 2 sizes × 3 recencies
    /// (36 experts).
    pub fn three_knob_grid() -> Self {
        let mut experts = Vec::with_capacity(36);
        for f in 2..=7u32 {
            for &s in &[20u64, 100] {
                for &r in &[10u64, 60, 600] {
                    experts.push(Expert::with_recency(f, s, r));
                }
            }
        }
        Self::new(experts)
    }

    /// Number of experts.
    pub fn len(&self) -> usize {
        self.experts.len()
    }

    /// True if the grid is empty (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.experts.is_empty()
    }

    /// The experts, in index order.
    pub fn experts(&self) -> &[Expert] {
        &self.experts
    }

    /// Expert at `idx`.
    pub fn get(&self, idx: usize) -> Expert {
        self.experts[idx]
    }

    /// Index of `expert` in the grid, if present.
    pub fn index_of(&self, expert: &Expert) -> Option<usize> {
        self.experts.iter().position(|e| e == expert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_36_experts() {
        let g = ExpertGrid::paper_grid();
        assert_eq!(g.len(), 36);
        assert_eq!(g.get(0), Expert::new(2, 10));
        assert_eq!(g.get(35), Expert::new(7, 1000));
    }

    #[test]
    fn three_knob_grid_has_36_experts() {
        let g = ExpertGrid::three_knob_grid();
        assert_eq!(g.len(), 36);
        assert!(g.experts().iter().all(|e| e.policy.max_recency_us.is_some()));
    }

    #[test]
    fn scaled_grid_multiplies_sizes() {
        let g = ExpertGrid::paper_grid_scaled(5);
        assert_eq!(g.get(0).s_bytes(), 50 * 1024);
    }

    #[test]
    fn labels_match_table2_convention() {
        assert_eq!(Expert::new(2, 10).label(), "f2s10");
        assert_eq!(Expert::new(7, 1000).label(), "f7s1000");
    }

    #[test]
    fn index_of_roundtrips() {
        let g = ExpertGrid::paper_grid();
        for i in 0..g.len() {
            assert_eq!(g.index_of(&g.get(i)), Some(i));
        }
        assert_eq!(g.index_of(&Expert::new(99, 1)), None);
    }
}
