#![warn(missing_docs)]

//! # darwin
//!
//! The paper's primary contribution: **Darwin**, a flexible learning-based
//! CDN cache-admission system (Chen et al., SIGCOMM 2023).
//!
//! Darwin selects, online, the best HOC admission *expert* — a threshold
//! policy (f, s[, r]) — for the traffic currently hitting a cache server,
//! using a three-stage pipeline:
//!
//! 1. **Offline clustering & expert-set association** ([`offline`]):
//!    historical traces are featurized ([`darwin_features`]), clustered
//!    ([`darwin_cluster`]), and each cluster is associated with the small set
//!    of experts that come within θ% of the best expert on its traces.
//! 2. **Offline cross-expert predictors** ([`offline`], [`model`]): for each
//!    ordered expert pair (i, j), a tiny neural net ([`darwin_nn`]) maps
//!    trace features (extended with a bucketized size distribution) to the
//!    conditional probabilities P(E_j hit | E_i hit) and
//!    P(E_j hit | E_i miss), enabling *fictitious reward samples* for experts
//!    that are not deployed.
//! 3. **Online selection** ([`online`]): each epoch, a warm-up phase
//!    estimates features and looks up the cluster; then Track-and-Stop with
//!    Side Information ([`darwin_bandit`]) identifies the best expert of the
//!    cluster's set, deploying experts over rounds and feeding the bandit
//!    real + fictitious rewards; the identified expert serves the rest of
//!    the epoch.
//!
//! The same pipeline optimizes any [`darwin_cache::Objective`] — OHR, BMR,
//! or hit-rate/disk-write combinations — by swapping the reward (§6.3).
//!
//! ```no_run
//! use darwin::prelude::*;
//!
//! # fn main() {
//! // Offline: train on historical traces.
//! let corpus: Vec<darwin_trace::Trace> = /* historical traces */ vec![];
//! let trainer = OfflineTrainer::new(OfflineConfig::default());
//! let model = std::sync::Arc::new(trainer.train(&corpus));
//!
//! // Online: adapt to live traffic.
//! let cfg = OnlineConfig::default();
//! let trace = /* live request stream */ darwin_trace::Trace::default();
//! let report = run_darwin(&model, &cfg, &trace, &CacheConfig::paper_default());
//! println!("OHR = {:.4}", report.metrics.hoc_ohr());
//! # }
//! ```

pub mod bits;
pub mod expert;
pub mod model;
pub mod offline;
pub mod online;
pub mod runner;

pub use expert::{Expert, ExpertGrid};
pub use model::{DarwinModel, PairPredictor};
pub use offline::{EvaluatedTrace, OfflineConfig, OfflineTrainer};
pub use online::{ControlEvent, ControllerPhase, OnlineConfig, OnlineController};
pub use runner::{run_darwin, run_static, DarwinReport};

/// Convenient re-exports for downstream code and examples.
pub mod prelude {
    pub use crate::expert::{Expert, ExpertGrid};
    pub use crate::model::DarwinModel;
    pub use crate::offline::{OfflineConfig, OfflineTrainer};
    pub use crate::online::{OnlineConfig, OnlineController};
    pub use crate::runner::{run_darwin, run_static, DarwinReport};
    pub use darwin_cache::{CacheConfig, CacheServer, Objective, ThresholdPolicy};
}
