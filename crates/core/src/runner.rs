//! Convenience drivers wiring a cache server to the online controller.

use crate::expert::Expert;
use crate::model::DarwinModel;
use crate::online::{EpochSummary, OnlineConfig, OnlineController, SwitchEvent};
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer};
use darwin_trace::Trace;
use std::sync::Arc;

/// The outcome of running Darwin over a trace.
#[derive(Debug, Clone)]
pub struct DarwinReport {
    /// Metrics over the whole trace.
    pub metrics: CacheMetrics,
    /// Every expert switch the controller made.
    pub switches: Vec<SwitchEvent>,
    /// Per-epoch identification summaries.
    pub epochs: Vec<EpochSummary>,
    /// Grid index of the expert deployed when the trace ended.
    pub final_expert: usize,
    /// Adaptation timeline: `(request_index, windowed HOC OHR)` samples, one
    /// per timeline window (empty if no window length was requested).
    pub timeline: Vec<(u64, f64)>,
}

/// Runs Darwin (model + online controller) over `trace` on a fresh server.
pub fn run_darwin(
    model: &Arc<DarwinModel>,
    cfg: &OnlineConfig,
    trace: &Trace,
    cache: &CacheConfig,
) -> DarwinReport {
    run_darwin_with_timeline(model, cfg, trace, cache, 0)
}

/// Like [`run_darwin`], additionally sampling the windowed HOC OHR every
/// `timeline_window` requests (0 disables sampling) — the data behind
/// adaptation-over-time plots.
pub fn run_darwin_with_timeline(
    model: &Arc<DarwinModel>,
    cfg: &OnlineConfig,
    trace: &Trace,
    cache: &CacheConfig,
    timeline_window: usize,
) -> DarwinReport {
    let mut ctrl = OnlineController::new(Arc::clone(model), *cfg);
    let mut server = CacheServer::new(cache.clone());
    server.set_policy(ctrl.current_expert().policy);
    let mut timeline = Vec::new();
    let mut window_start = CacheMetrics::default();
    for (i, r) in trace.iter().enumerate() {
        server.process(r);
        if let Some(e) = ctrl.observe(r, &server.metrics()) {
            server.set_policy(e.policy);
        }
        if timeline_window > 0 && (i + 1) % timeline_window == 0 {
            let now = server.metrics();
            timeline.push((i as u64 + 1, now.diff(&window_start).hoc_ohr()));
            window_start = now;
        }
    }
    DarwinReport {
        metrics: server.metrics(),
        switches: ctrl.switches().to_vec(),
        epochs: ctrl.epochs().to_vec(),
        final_expert: ctrl.current_expert_index(),
        timeline,
    }
}

/// Runs a fixed expert over `trace` on a fresh server (the static baseline).
pub fn run_static(expert: Expert, trace: &Trace, cache: &CacheConfig) -> CacheMetrics {
    let mut server = CacheServer::new(cache.clone());
    server.set_policy(expert.policy);
    server.process_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::{Expert, ExpertGrid};
    use crate::offline::{OfflineConfig, OfflineTrainer};
    use darwin_nn::TrainConfig;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    #[test]
    fn darwin_end_to_end_beats_worst_static() {
        let grid = ExpertGrid::new(vec![
            Expert::new(1, 1000), // generous: good for download-heavy
            Expert::new(7, 10),   // strict: starves most traffic
        ]);
        let cfg = OfflineConfig {
            grid: grid.clone(),
            hoc_bytes: 2 * 1024 * 1024,
            nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
            n_clusters: 2,
            ..OfflineConfig::default()
        };
        let trainer = OfflineTrainer::new(cfg);
        let corpus: Vec<_> = (0..4)
            .map(|i| {
                TraceGenerator::new(
                    MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 3.0),
                    20 + i as u64,
                )
                .generate(10_000)
            })
            .collect();
        let model = Arc::new(trainer.train(&corpus));

        let online = crate::online::OnlineConfig {
            epoch_requests: 30_000,
            warmup_requests: 1_500,
            round_requests: 400,
            ..Default::default()
        };
        let test_trace =
            TraceGenerator::new(MixSpec::single(TrafficClass::download()), 77).generate(30_000);
        let cache = darwin_cache::CacheConfig {
            hoc_bytes: 2 * 1024 * 1024,
            ..darwin_cache::CacheConfig::small_test()
        };

        let report = run_darwin(&model, &online, &test_trace, &cache);
        let worst = run_static(Expert::new(7, 10), &test_trace, &cache);
        assert!(
            report.metrics.hoc_ohr() >= worst.hoc_ohr(),
            "darwin {} < worst static {}",
            report.metrics.hoc_ohr(),
            worst.hoc_ohr()
        );
        assert!(report.epochs.first().map(|e| e.set_size >= 1).unwrap_or(false));
    }

    #[test]
    fn static_runner_matches_manual_simulation() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 4).generate(5_000);
        let cache = darwin_cache::CacheConfig::small_test();
        let e = Expert::new(2, 100);
        let a = run_static(e, &trace, &cache);
        let mut server = darwin_cache::CacheServer::new(cache);
        server.set_policy(e.policy);
        let b = server.process_trace(&trace);
        assert_eq!(a, b);
    }
}
