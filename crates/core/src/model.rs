//! The trained Darwin model: everything the online phase needs.
//!
//! Holds the feature normalizers, the k-means clusters, the per-cluster best
//! expert sets, the cross-expert predictor nets, and corpus statistics used
//! to bootstrap online estimates. The model is serializable so offline
//! training (periodic, possibly on a different machine) can ship artifacts
//! to cache servers — mirroring how the paper's prototype "looks up the
//! cluster and loads the corresponding best experts into memory" at the end
//! of the feature-collection stage.

use crate::expert::ExpertGrid;
use darwin_bandit::SideInfo;
use darwin_cache::Objective;
use darwin_cluster::{KMeans, Normalizer};
use darwin_features::{FeatureVector, SizeDistribution};
use darwin_nn::Mlp;
use serde::{Deserialize, Serialize};

/// A trained cross-expert predictor `M_{i,j}`: maps normalized extended
/// features to `[P(E_j hit | E_i hit), P(E_j hit | E_i miss)]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairPredictor {
    /// The underlying net (2 sigmoid outputs).
    pub net: Mlp,
}

/// The serializable product of offline training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DarwinModel {
    grid: ExpertGrid,
    objective: Objective,
    base_normalizer: Normalizer,
    ext_normalizer: Normalizer,
    kmeans: KMeans,
    cluster_sets: Vec<Vec<usize>>,
    /// `predictors[i][j]`: net for ordered pair (i, j); `None` where the
    /// pair never co-occurs in a cluster set (fallback table used instead).
    predictors: Vec<Vec<Option<PairPredictor>>>,
    /// Corpus-mean conditionals per pair (fallback when no net exists).
    fallback_cond: Vec<Vec<(f64, f64)>>,
    /// Corpus-mean hit rate per expert (marginal bootstrap).
    mean_hit_rates: Vec<f64>,
    theta_percent: f64,
}

impl DarwinModel {
    /// Assembles a model (called by the offline trainer).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        grid: ExpertGrid,
        objective: Objective,
        base_normalizer: Normalizer,
        ext_normalizer: Normalizer,
        kmeans: KMeans,
        cluster_sets: Vec<Vec<usize>>,
        predictors: Vec<Vec<Option<PairPredictor>>>,
        fallback_cond: Vec<Vec<(f64, f64)>>,
        mean_hit_rates: Vec<f64>,
        theta_percent: f64,
    ) -> Self {
        assert_eq!(cluster_sets.len(), kmeans.k(), "cluster set per centroid");
        assert_eq!(predictors.len(), grid.len(), "predictor matrix square in experts");
        assert_eq!(mean_hit_rates.len(), grid.len(), "one marginal per expert");
        Self {
            grid,
            objective,
            base_normalizer,
            ext_normalizer,
            kmeans,
            cluster_sets,
            predictors,
            fallback_cond,
            mean_hit_rates,
            theta_percent,
        }
    }

    /// The expert action space.
    pub fn grid(&self) -> &ExpertGrid {
        &self.grid
    }

    /// The objective this model was trained for.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The θ used for expert-set association.
    pub fn theta_percent(&self) -> f64 {
        self.theta_percent
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.kmeans.k()
    }

    /// Online cluster lookup from a raw (unnormalized) 15-entry feature
    /// vector.
    pub fn lookup_cluster(&self, features: &FeatureVector) -> usize {
        let z = self.base_normalizer.transform(features.values());
        self.kmeans.assign(&z)
    }

    /// The best-expert set (indices into [`Self::grid`]) of a cluster.
    pub fn expert_set(&self, cluster: usize) -> &[usize] {
        &self.cluster_sets[cluster]
    }

    /// All cluster sets (for the clustering-effectiveness experiments).
    pub fn cluster_sets(&self) -> &[Vec<usize>] {
        &self.cluster_sets
    }

    /// Corpus-mean hit rate of expert `e` (marginal bootstrap for Σ).
    pub fn mean_hit_rate(&self, e: usize) -> f64 {
        self.mean_hit_rates[e]
    }

    /// Predicted conditionals `(P(E_j hit | E_i hit), P(E_j hit | E_i miss))`
    /// for a raw extended feature vector. Falls back to corpus means when no
    /// net was trained for the pair.
    pub fn conditionals(&self, i: usize, j: usize, extended: &FeatureVector) -> (f64, f64) {
        if i == j {
            return (1.0, 0.0);
        }
        match &self.predictors[i][j] {
            Some(p) => {
                // The predictors may have been trained on a prefix of the
                // extended vector (the no-size-distribution ablation); feed
                // exactly the dimensionality their normalizer was fit on.
                let take = self.ext_normalizer.dim().min(extended.len());
                let z = self.ext_normalizer.transform(&extended.values()[..take]);
                let out = p.net.forward(&z);
                (out[0].clamp(0.0, 1.0), out[1].clamp(0.0, 1.0))
            }
            None => self.fallback_cond[i][j],
        }
    }

    /// Whether a trained net exists for the ordered pair.
    pub fn has_predictor(&self, i: usize, j: usize) -> bool {
        self.predictors[i][j].is_some()
    }

    /// Predicted hit rate of expert `j` given that the deployed expert `i`
    /// observed hit rate `p_i`: the fictitious-sample mean of §4.2,
    /// `Y_j = P(E_j|E_i hit)·p̂_i + P(E_j|E_i miss)·(1 − p̂_i)`.
    pub fn predict_hit_rate(&self, i: usize, j: usize, p_i: f64, extended: &FeatureVector) -> f64 {
        let (hh, hm) = self.conditionals(i, j, extended);
        (hh * p_i + hm * (1.0 - p_i)).clamp(0.0, 1.0)
    }

    /// Builds the side-information matrix Σ over the experts in `set`, for
    /// the current traffic (extended features) and estimated marginal hit
    /// rates. Per §4.1:
    ///
    /// ```text
    /// σ²_{ij} = P(E_i hit)·V_hit(i,j) + P(E_i miss)·V_miss(i,j),
    /// V_hit  = p·(1−p) with p = P(E_j hit | E_i hit)   (V_miss analogous)
    /// ```
    ///
    /// These are per-request Bernoulli variances; a round averages
    /// `effective_samples` approximately-independent requests, so the round
    /// reward variance is scaled by `1 / effective_samples`, floored at
    /// `min_variance` to keep Σ positive.
    pub fn side_info(
        &self,
        set: &[usize],
        extended: &FeatureVector,
        marginals: &[f64],
        effective_samples: f64,
        min_variance: f64,
    ) -> SideInfo {
        assert_eq!(set.len(), marginals.len(), "one marginal per set member");
        assert!(effective_samples >= 1.0, "effective samples must be ≥ 1");
        let k = set.len();
        let mut m = vec![vec![min_variance; k]; k];
        for (a, &i) in set.iter().enumerate() {
            let p_i = marginals[a].clamp(0.0, 1.0);
            for (b, &j) in set.iter().enumerate() {
                let (hh, hm) = if i == j {
                    // Deployed expert: real Bernoulli observation.
                    (marginals[b], marginals[b])
                } else {
                    self.conditionals(i, j, extended)
                };
                let v_hit = hh * (1.0 - hh);
                let v_miss = hm * (1.0 - hm);
                let v = p_i * v_hit + (1.0 - p_i) * v_miss;
                m[a][b] = (v / effective_samples).max(min_variance);
            }
        }
        SideInfo::new(m)
    }

    /// Estimates marginal hit rates for the experts in `set`, seeding the
    /// side-information matrix before any deployment: the corpus mean,
    /// optionally refined from the warm-up expert's observed hit rate via
    /// the predictors.
    pub fn bootstrap_marginals(
        &self,
        set: &[usize],
        extended: &FeatureVector,
        warmup: Option<(usize, f64)>,
    ) -> Vec<f64> {
        set.iter()
            .map(|&j| match warmup {
                Some((i, p_i)) if i != j => self.predict_hit_rate(i, j, p_i, extended),
                Some((_, p_i)) => p_i,
                None => self.mean_hit_rate(j),
            })
            .collect()
    }

    /// Converts a (possibly predicted) HOC hit rate of expert `e` into the
    /// model's objective reward, using the observed size distribution — the
    /// §6.3 recipe for optimizing BMR and disk-write objectives with the
    /// existing OHR predictors.
    pub fn hit_rate_to_reward(&self, e: usize, hit_rate: f64, size_dist: &SizeDistribution) -> f64 {
        let mean_all = size_dist.mean_size();
        match self.objective {
            Objective::HocOhr | Objective::TotalOhr => hit_rate,
            Objective::HocBmr => {
                if mean_all <= 0.0 {
                    return 0.0;
                }
                // Hits happen only among requests the expert can admit
                // (size ≤ s): approximate hit bytes/request by
                // hit_rate × mean size of admissible requests.
                let mean_small = mean_size_at_most(size_dist, self.grid.get(e).s_bytes());

                (hit_rate * mean_small / mean_all).clamp(0.0, 1.0) // reward = 1 − BMR = byte hit ratio
            }
            Objective::OhrMinusDiskWrites { weight_per_mib } => {
                let mean_small = mean_size_at_most(size_dist, self.grid.get(e).s_bytes());
                let hit_bytes_per_req = hit_rate * mean_small;
                let missed_mib = (mean_all - hit_bytes_per_req).max(0.0) / (1024.0 * 1024.0);
                hit_rate - weight_per_mib * missed_mib
            }
        }
    }

    /// Serializes the model to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Restores a model from [`DarwinModel::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes the model to a file (the artifact offline training ships to
    /// cache servers).
    pub fn save_to_file<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a model previously written by [`DarwinModel::save_to_file`].
    pub fn load_from_file<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Rough in-memory footprint of the model in bytes — the §6.4 memory
    /// discussion: the cross-expert prediction networks dominate ("the
    /// largest memory usage is for the cross-expert prediction networks").
    pub fn memory_footprint_bytes(&self) -> usize {
        let f64s = std::mem::size_of::<f64>();
        let mut predictors = 0usize;
        for row in &self.predictors {
            for p in row.iter().flatten() {
                // 1-hidden-layer net: (in+1)×hidden + (hidden+1)×out params.
                let h = p.net.n_hidden();
                let hidden_params = (p.net.n_in() + 1) * h;
                let out_params = (h + 1) * p.net.n_out();
                predictors += (hidden_params + out_params) * f64s;
            }
        }
        let clusters = self.kmeans.centroids().len()
            * self.kmeans.centroids().first().map(|c| c.len()).unwrap_or(0)
            * f64s;
        let fallback = self.fallback_cond.len() * self.fallback_cond.len() * 2 * f64s;
        let sets: usize = self.cluster_sets.iter().map(|s| s.len() * std::mem::size_of::<usize>()).sum();
        predictors + clusters + fallback + sets
    }
}

/// Mean size of requests with size ≤ `s`, from the bucketized distribution
/// (whole buckets whose range lies at or below `s`).
fn mean_size_at_most(dist: &SizeDistribution, s: u64) -> f64 {
    let cutoff = dist.bucket_of(s);
    let fr = dist.fractions();
    let means = dist.mean_size_per_bucket();
    let mut mass = 0.0;
    let mut bytes = 0.0;
    for b in 0..=cutoff.min(fr.len() - 1) {
        mass += fr[b];
        bytes += fr[b] * means[b];
    }
    if mass <= 0.0 {
        0.0
    } else {
        bytes / mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::Expert;
    use crate::offline::{OfflineConfig, OfflineTrainer};
    use darwin_nn::TrainConfig;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn trained_model() -> (DarwinModel, Vec<crate::offline::EvaluatedTrace>) {
        let cfg = OfflineConfig {
            grid: ExpertGrid::new(vec![Expert::new(1, 20), Expert::new(1, 500), Expert::new(5, 20)]),
            hoc_bytes: 2 * 1024 * 1024,
            nn_train: TrainConfig { epochs: 50, ..TrainConfig::default() },
            n_clusters: 2,
            ..OfflineConfig::default()
        };
        let trainer = OfflineTrainer::new(cfg);
        let traces: Vec<_> = (0..5)
            .map(|i| {
                TraceGenerator::new(
                    MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 4.0),
                    50 + i as u64,
                )
                .generate(12_000)
            })
            .collect();
        let evals = trainer.evaluate_corpus(&traces);
        (trainer.train_from_evaluations(&evals), evals)
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let (model, evals) = trained_model();
        let back = DarwinModel::from_json(&model.to_json()).unwrap();
        let f = &evals[0].extended;
        assert_eq!(model.lookup_cluster(&evals[0].features), back.lookup_cluster(&evals[0].features));
        let (a1, b1) = model.conditionals(0, 1, f);
        let (a2, b2) = back.conditionals(0, 1, f);
        assert!((a1 - a2).abs() < 1e-9 && (b1 - b2).abs() < 1e-9);
    }

    #[test]
    fn side_info_is_valid_and_scaled() {
        let (model, evals) = trained_model();
        let set = vec![0, 1, 2];
        let marg = model.bootstrap_marginals(&set, &evals[0].extended, None);
        let s1 = model.side_info(&set, &evals[0].extended, &marg, 100.0, 1e-6);
        let s2 = model.side_info(&set, &evals[0].extended, &marg, 1000.0, 1e-6);
        assert_eq!(s1.k(), 3);
        // More effective samples ⇒ smaller variances.
        assert!(s2.sigma2_max() <= s1.sigma2_max() + 1e-15);
        assert!(s1.sigma2_min() >= 1e-6);
    }

    #[test]
    fn bootstrap_marginals_use_warmup_observation() {
        let (model, evals) = trained_model();
        let set = vec![0, 1];
        let m = model.bootstrap_marginals(&set, &evals[0].extended, Some((0, 0.42)));
        assert!((m[0] - 0.42).abs() < 1e-12, "deployed expert keeps its observation");
        assert!((0.0..=1.0).contains(&m[1]));
    }

    #[test]
    fn predict_hit_rate_interpolates_conditionals() {
        let (model, evals) = trained_model();
        let f = &evals[0].extended;
        let (hh, hm) = model.conditionals(0, 1, f);
        let p = model.predict_hit_rate(0, 1, 0.5, f);
        assert!((p - (0.5 * hh + 0.5 * hm)).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_to_reward_identity_for_ohr() {
        let (model, evals) = trained_model();
        assert_eq!(model.hit_rate_to_reward(0, 0.37, &evals[0].size_dist), 0.37);
    }

    #[test]
    fn mean_size_at_most_monotone() {
        let (_, evals) = trained_model();
        let d = &evals[0].size_dist;
        let m_small = mean_size_at_most(d, 20 * 1024);
        let m_large = mean_size_at_most(d, 1024 * 1024 * 1024);
        assert!(m_small <= m_large + 1e-9);
        assert!((m_large - d.mean_size()).abs() < 1e-6);
    }
}
