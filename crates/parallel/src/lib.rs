//! Deterministic scoped fan-out for sweep workloads.
//!
//! Every parallel sweep in the workspace — corpus evaluation, predictor
//! training pairs, figure grids, baseline suites, ablations — goes through
//! [`par_run`] / [`par_map`]. The contract that makes parallelism safe for a
//! reproduction repository is **bitwise determinism**: results are identical
//! whatever the worker count, because
//!
//! - each work item is identified by its index and must derive all of its
//!   randomness from that index (callers seed per-item RNGs, never share one);
//! - each item writes to its own pre-allocated output slot, so there is no
//!   order-dependent aggregation — the returned `Vec` is in item order;
//! - work distribution (an atomic counter) affects only *which thread* runs
//!   an item, never *what* the item computes.
//!
//! Thread count resolution is centralized in [`resolve_threads`]: an explicit
//! request wins, then the `DARWIN_THREADS` environment variable, then the
//! machine's available parallelism. Nested calls degrade to sequential
//! execution automatically (a worker thread that calls [`par_run`] again runs
//! the inner sweep inline), so outer-level parallelism is never oversubscribed
//! and callers can parallelize freely at every layer.

use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable consulted when no explicit thread count is given.
pub const THREADS_ENV: &str = "DARWIN_THREADS";

thread_local! {
    /// True while this thread is executing work items inside [`par_run`];
    /// used to run nested sweeps inline instead of oversubscribing.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Resolves a requested worker count to an effective one.
///
/// `requested > 0` is honored as-is. `requested == 0` means "auto": the
/// `DARWIN_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`].
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(s) = std::env::var(THREADS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// True when the calling thread is already a [`par_run`] worker (a nested
/// sweep would run inline).
pub fn in_pool() -> bool {
    IN_POOL.with(|f| f.get())
}

/// Runs `f` with this thread marked as a sweep worker, so any [`par_run`] /
/// [`par_map`] call inside `f` executes inline instead of spawning threads.
///
/// Long-lived worker threads that the engine did not create — e.g. the shard
/// workers of `darwin-shard`'s fleet, each already pinned to its own thread —
/// wrap their serving loop in this so that model code they call cannot
/// oversubscribe the machine with `N_workers × N_threads` nested pools. The
/// flag is restored on exit (including unwinds).
pub fn inline_sweeps<T, F: FnOnce() -> T>(f: F) -> T {
    let _guard = PoolGuard::enter();
    f()
}

/// Output slots indexed by work item. Safety rests on the work queue: the
/// atomic counter hands each index to exactly one worker, so no two threads
/// ever touch the same slot.
struct Slots<T> {
    cells: Vec<UnsafeCell<Option<T>>>,
}

unsafe impl<T: Send> Sync for Slots<T> {}

/// Restores the thread's pool flag on drop (including unwinds).
struct PoolGuard {
    prev: bool,
}

impl PoolGuard {
    fn enter() -> Self {
        let prev = IN_POOL.with(|f| f.replace(true));
        Self { prev }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|f| f.set(prev));
    }
}

/// Runs `f(0..n)` across `threads` workers and returns the results in index
/// order. `threads == 0` means auto (see [`resolve_threads`]).
///
/// `f` must be deterministic in its index argument alone for the engine's
/// bitwise-reproducibility guarantee to hold; the function is executed
/// exactly once per index regardless of worker count.
pub fn par_run<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads).min(n);
    if threads <= 1 || in_pool() {
        // Sequential fallback: same index order, same per-index computation,
        // so results are bitwise identical to the parallel path.
        return (0..n).map(f).collect();
    }

    let slots = Slots { cells: (0..n).map(|_| UnsafeCell::new(None)).collect() };
    let next = AtomicUsize::new(0);

    let work = |slots: &Slots<T>, next: &AtomicUsize| {
        let _guard = PoolGuard::enter();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let value = f(i);
            // Safety: index `i` was claimed by this thread alone.
            unsafe { *slots.cells[i].get() = Some(value) };
        }
    };

    std::thread::scope(|scope| {
        // The calling thread participates as a worker, so `threads` is the
        // total worker count, not an extra-thread count.
        for _ in 1..threads {
            scope.spawn(|| work(&slots, &next));
        }
        work(&slots, &next);
    });

    slots.cells.into_iter().map(|c| c.into_inner().expect("work item completed")).collect()
}

/// Parallel map over a slice, preserving order. `threads == 0` means auto.
pub fn par_map<I, T, F>(threads: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_run(threads, items.len(), |i| f(&items[i]))
}

/// Parallel map over a slice with the item index, preserving order.
/// `threads == 0` means auto.
pub fn par_map_indexed<I, T, F>(threads: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    par_run(threads, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = par_run(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        par_run(4, 1000, |i| seen.lock().unwrap().push(i));
        let v = seen.into_inner().unwrap();
        assert_eq!(v.len(), 1000);
        assert_eq!(v.iter().copied().collect::<HashSet<_>>().len(), 1000);
    }

    #[test]
    fn matches_sequential_bitwise() {
        // A computation with enough structure that ordering bugs would show:
        // a per-item RNG-ish hash chain seeded by the index.
        let work = |i: usize| {
            let mut h = i as u64 ^ 0x9E37_79B9_7F4A_7C15;
            for _ in 0..100 {
                h = h.wrapping_mul(0x100_0000_01B3).rotate_left(17);
            }
            h as f64 / u64::MAX as f64
        };
        let seq = par_run(1, 257, work);
        for threads in [2, 4, 8] {
            let par = par_run(threads, 257, work);
            assert!(seq.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn nested_calls_run_inline() {
        let out = par_run(4, 8, |i| {
            assert!(in_pool());
            // The nested sweep must degrade to sequential, not deadlock or
            // oversubscribe.
            let inner = par_run(4, 5, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out[3], 30 + 31 + 32 + 33 + 34);
        assert!(!in_pool());
    }

    #[test]
    fn par_map_preserves_order_and_items() {
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let out = par_map(3, &items, |s| s.len());
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
        let out = par_map_indexed(3, &items, |i, s| (i, s.clone()));
        for (i, (j, s)) in out.iter().enumerate() {
            assert_eq!(i, *j);
            assert_eq!(s, &items[i]);
        }
    }

    #[test]
    fn zero_items_and_explicit_threads() {
        let out: Vec<usize> = par_run(0, 0, |i| i);
        assert!(out.is_empty());
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_run(64, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn inline_sweeps_forces_sequential_nested_runs() {
        assert!(!in_pool());
        let out = inline_sweeps(|| {
            assert!(in_pool(), "scope must mark the thread as a worker");
            par_run(8, 4, |i| i * 2)
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
        assert!(!in_pool(), "flag restored after the scope");
        // Restored on unwind too.
        let r = std::panic::catch_unwind(|| inline_sweeps(|| panic!("boom")));
        assert!(r.is_err());
        assert!(!in_pool());
    }

    #[test]
    fn panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            par_run(2, 10, |i| {
                if i == 7 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
        // The pool flag must be restored even after an unwind.
        assert!(!in_pool());
    }
}
