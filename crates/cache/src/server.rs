//! The two-level cache server and the standalone HOC simulator.
//!
//! [`CacheServer`] wires together the HOC (with a swappable admission
//! policy — the Darwin control point), the DC (with its second-request Bloom
//! admission), frequency tracking and metrics, implementing the request flow
//! of Figure 1. [`HocSim`] is a lighter HOC-only simulator used for shadow
//! caches (HillClimbing) and for offline expert evaluation where only HOC
//! hit/miss sequences matter.

use crate::bloom::{BloomFilter, FrequencySketch};
use crate::eviction::{EvictionKind, Store};
use crate::metrics::CacheMetrics;
use crate::policy::{AdmissionPolicy, ObjectView, ThresholdPolicy};
use darwin_ckpt::{CkptError, Dec, Enc};
use darwin_trace::{ObjectId, Request};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where a request was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served from the Hot Object Cache.
    HocHit,
    /// Served from the Disk Cache.
    DcHit,
    /// Fetched from the origin (full miss).
    OriginFetch,
}

impl RequestOutcome {
    /// True if the HOC served the request (the per-request indicator Darwin's
    /// cross-expert predictor training conditions on).
    pub fn is_hoc_hit(self) -> bool {
        matches!(self, RequestOutcome::HocHit)
    }
}

/// How the server tracks per-object request counts for the frequency knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrequencyMode {
    /// Exact `HashMap` counting: deterministic, memory ∝ unique objects.
    /// The simulator default (matches offline expert evaluation).
    Exact,
    /// TinyLFU-style counting sketch: bounded memory, slight over-counting,
    /// periodic aging. What a production deployment would run.
    Sketch {
        /// Approximate number of concurrently tracked objects.
        expected_objects: usize,
    },
}

/// Static configuration of a [`CacheServer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// HOC capacity in bytes (paper default: 100 MB).
    pub hoc_bytes: u64,
    /// DC capacity in bytes (paper default: 10 GB in simulation).
    pub dc_bytes: u64,
    /// HOC eviction policy (paper: LRU).
    pub hoc_eviction: EvictionKind,
    /// DC eviction policy (paper: LRU).
    pub dc_eviction: EvictionKind,
    /// Frequency tracking mode.
    pub frequency: FrequencyMode,
    /// Sizing hint for the DC's one-hit-wonder Bloom filter.
    pub expected_unique_objects: usize,
}

impl CacheConfig {
    /// The paper's simulator setup: 100 MB HOC, 10 GB DC, LRU everywhere.
    pub fn paper_default() -> Self {
        Self {
            hoc_bytes: 100 * 1024 * 1024,
            dc_bytes: 10 * 1024 * 1024 * 1024,
            hoc_eviction: EvictionKind::Lru,
            dc_eviction: EvictionKind::Lru,
            frequency: FrequencyMode::Exact,
            expected_unique_objects: 1_000_000,
        }
    }

    /// A deliberately small configuration for fast unit tests (1 MB / 64 MB).
    pub fn small_test() -> Self {
        Self {
            hoc_bytes: 1024 * 1024,
            dc_bytes: 64 * 1024 * 1024,
            hoc_eviction: EvictionKind::Lru,
            dc_eviction: EvictionKind::Lru,
            frequency: FrequencyMode::Exact,
            expected_unique_objects: 100_000,
        }
    }

    /// Scales HOC and DC capacity by `factor` (for the 200 MB / 500 MB
    /// studies).
    pub fn scaled(&self, factor: u64) -> Self {
        Self { hoc_bytes: self.hoc_bytes * factor, dc_bytes: self.dc_bytes * factor, ..self.clone() }
    }
}

/// Exact or sketched frequency tracker.
#[derive(Debug)]
enum FreqTracker {
    Exact(HashMap<ObjectId, u32>),
    Sketch(FrequencySketch),
}

impl FreqTracker {
    fn new(mode: FrequencyMode) -> Self {
        match mode {
            FrequencyMode::Exact => FreqTracker::Exact(HashMap::new()),
            FrequencyMode::Sketch { expected_objects } => {
                FreqTracker::Sketch(FrequencySketch::with_capacity(expected_objects))
            }
        }
    }

    /// Records a request, returning the count including this request.
    fn increment(&mut self, id: ObjectId) -> u32 {
        match self {
            FreqTracker::Exact(map) => {
                let c = map.entry(id).or_insert(0);
                *c = c.saturating_add(1);
                *c
            }
            FreqTracker::Sketch(s) => s.increment(id),
        }
    }
}

/// The two-level CDN cache server.
pub struct CacheServer {
    config: CacheConfig,
    hoc: Store,
    dc: Store,
    policy: Box<dyn AdmissionPolicy>,
    freq: FreqTracker,
    /// Last request timestamp per object (for the recency knob and per-object
    /// inter-arrival bookkeeping).
    last_access: HashMap<ObjectId, u64>,
    /// One-hit-wonder filter in front of the DC.
    dc_filter: BloomFilter,
    metrics: CacheMetrics,
}

impl CacheServer {
    /// Creates a server with the default expert (f=2, s=100 KB) installed;
    /// call [`CacheServer::set_policy`] to choose another.
    pub fn new(config: CacheConfig) -> Self {
        let hoc = Store::new(config.hoc_bytes, config.hoc_eviction);
        let dc = Store::new(config.dc_bytes, config.dc_eviction);
        let freq = FreqTracker::new(config.frequency);
        let dc_filter = BloomFilter::with_capacity(config.expected_unique_objects);
        Self {
            config,
            hoc,
            dc,
            policy: Box::new(ThresholdPolicy::new(2, 100 * 1024)),
            freq,
            last_access: HashMap::new(),
            dc_filter,
            metrics: CacheMetrics::default(),
        }
    }

    /// Installs a new HOC admission policy (takes effect on the next
    /// request). This is Darwin's actuation point: deploying an expert is
    /// exactly this call.
    pub fn set_policy<P: AdmissionPolicy + 'static>(&mut self, policy: P) {
        self.policy = Box::new(policy);
    }

    /// Label of the currently deployed admission policy.
    pub fn policy_label(&self) -> String {
        self.policy.label()
    }

    /// The configuration this server was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Cumulative metrics since construction.
    pub fn metrics(&self) -> CacheMetrics {
        self.metrics
    }

    /// Bytes currently resident in the HOC.
    pub fn hoc_used_bytes(&self) -> u64 {
        self.hoc.used_bytes()
    }

    /// Bytes currently resident in the DC.
    pub fn dc_used_bytes(&self) -> u64 {
        self.dc.used_bytes()
    }

    /// Processes one request through the two-level hierarchy, returning where
    /// it was served from.
    pub fn process(&mut self, req: &Request) -> RequestOutcome {
        let frequency = self.freq.increment(req.id);
        let recency_us = self
            .last_access
            .insert(req.id, req.timestamp_us)
            .map(|prev| req.timestamp_us.saturating_sub(prev));

        self.metrics.requests += 1;
        self.metrics.bytes_total += req.size;

        // Level 1: HOC.
        if self.hoc.touch(req.id) {
            self.metrics.hoc_hits += 1;
            self.metrics.bytes_hoc_hit += req.size;
            return RequestOutcome::HocHit;
        }

        // Level 2: DC (and possible promotion into the HOC).
        let outcome = if self.dc.touch(req.id) {
            self.metrics.dc_hits += 1;
            self.metrics.bytes_dc_hit += req.size;
            RequestOutcome::DcHit
        } else {
            self.metrics.origin_fetches += 1;
            self.metrics.bytes_origin += req.size;
            // DC admission: only on a repeat request (Bloom-filtered).
            if self.dc_filter.insert(req.id) {
                let evicted = self.dc.insert(req.id, req.size);
                if self.dc.contains(req.id) {
                    self.metrics.dc_writes += 1;
                    self.metrics.dc_write_bytes += req.size;
                }
                self.metrics.dc_evictions += evicted.len() as u64;
            }
            RequestOutcome::OriginFetch
        };

        // HOC admission (promotion) — the expert decision.
        let view =
            ObjectView { id: req.id, size: req.size, frequency, recency_us, now_us: req.timestamp_us };
        if self.policy.admit(&view) {
            let evicted = self.hoc.insert(req.id, req.size);
            if self.hoc.contains(req.id) {
                self.metrics.hoc_writes += 1;
                self.metrics.hoc_write_bytes += req.size;
            }
            self.metrics.hoc_evictions += evicted.len() as u64;
        }
        outcome
    }

    /// Processes a whole trace, returning the metrics accumulated over it
    /// (cumulative metrics minus the pre-trace snapshot).
    pub fn process_trace(&mut self, trace: &darwin_trace::Trace) -> CacheMetrics {
        let before = self.metrics;
        for r in trace {
            self.process(r);
        }
        self.metrics.diff(&before)
    }

    /// Serializes the server's full mutable state — both store levels, the
    /// frequency tracker, per-object recency bookkeeping, the DC's one-hit
    /// wonder filter, and cumulative metrics — prefixed with a fingerprint
    /// of the static [`CacheConfig`].
    ///
    /// The deployed admission policy is deliberately *not* included: the
    /// controller that deploys experts owns that state, and the shard
    /// checkpoint layer records it alongside these bytes. Encoding is
    /// canonical (hash maps sorted by key), so identical state always
    /// yields identical bytes.
    pub fn save_state(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.bytes(&config_fingerprint(&self.config));
        self.hoc.encode_state(&mut enc);
        self.dc.encode_state(&mut enc);
        match &self.freq {
            FreqTracker::Exact(map) => {
                enc.u8(0);
                let mut entries: Vec<(ObjectId, u32)> = map.iter().map(|(&id, &c)| (id, c)).collect();
                entries.sort_unstable();
                enc.seq(&entries, |e, &(id, c)| {
                    e.u64(id);
                    e.u32(c);
                });
            }
            FreqTracker::Sketch(s) => {
                enc.u8(1);
                s.encode_state(&mut enc);
            }
        }
        let mut last: Vec<(ObjectId, u64)> =
            self.last_access.iter().map(|(&id, &ts)| (id, ts)).collect();
        last.sort_unstable();
        enc.seq(&last, |e, &(id, ts)| {
            e.u64(id);
            e.u64(ts);
        });
        self.dc_filter.encode_state(&mut enc);
        self.metrics.encode_state(&mut enc);
        enc.into_bytes()
    }

    /// Rebuilds a server from bytes written by [`CacheServer::save_state`].
    ///
    /// `config` must match the configuration the state was saved under
    /// (compared by fingerprint — restoring a checkpoint into a differently
    /// sized cache would silently violate capacity invariants). The restored
    /// server has the default policy installed; the caller re-deploys the
    /// policy that was active at save time.
    pub fn restore_state(config: CacheConfig, bytes: &[u8]) -> Result<Self, CkptError> {
        let mut dec = Dec::new(bytes);
        let found = dec.bytes()?;
        if found != config_fingerprint(&config) {
            return Err(CkptError::Malformed("cache config fingerprint mismatch".into()));
        }
        let hoc = Store::decode_state(&mut dec)?;
        let dc = Store::decode_state(&mut dec)?;
        if hoc.capacity() != config.hoc_bytes || dc.capacity() != config.dc_bytes {
            return Err(CkptError::Malformed("store capacity does not match config".into()));
        }
        let freq = match (dec.u8()?, config.frequency) {
            (0, FrequencyMode::Exact) => {
                let entries = dec.seq(|d| Ok((d.u64()?, d.u32()?)))?;
                FreqTracker::Exact(entries.into_iter().collect())
            }
            (1, FrequencyMode::Sketch { .. }) => {
                FreqTracker::Sketch(FrequencySketch::decode_state(&mut dec)?)
            }
            (t, _) => {
                return Err(CkptError::Malformed(format!(
                    "frequency tracker tag {t} does not match config"
                )))
            }
        };
        let last_access: HashMap<ObjectId, u64> =
            dec.seq(|d| Ok((d.u64()?, d.u64()?)))?.into_iter().collect();
        let dc_filter = BloomFilter::decode_state(&mut dec)?;
        let metrics = CacheMetrics::decode_state(&mut dec)?;
        dec.finish()?;
        Ok(Self {
            config,
            hoc,
            dc,
            policy: Box::new(ThresholdPolicy::new(2, 100 * 1024)),
            freq,
            last_access,
            dc_filter,
            metrics,
        })
    }
}

/// Canonical byte fingerprint of a [`CacheConfig`], used to refuse restoring
/// a checkpoint into a server with different static configuration.
fn config_fingerprint(cfg: &CacheConfig) -> Vec<u8> {
    fn kind(enc: &mut Enc, k: EvictionKind) {
        match k {
            EvictionKind::Lru => enc.u8(0),
            EvictionKind::Fifo => enc.u8(1),
            EvictionKind::Lfu => enc.u8(2),
            EvictionKind::SegmentedLru { segments } => {
                enc.u8(3);
                enc.u8(segments);
            }
        }
    }
    let mut enc = Enc::new();
    enc.u64(cfg.hoc_bytes);
    enc.u64(cfg.dc_bytes);
    kind(&mut enc, cfg.hoc_eviction);
    kind(&mut enc, cfg.dc_eviction);
    match cfg.frequency {
        FrequencyMode::Exact => enc.u8(0),
        FrequencyMode::Sketch { expected_objects } => {
            enc.u8(1);
            enc.usize(expected_objects);
        }
    }
    enc.usize(cfg.expected_unique_objects);
    enc.into_bytes()
}

/// A standalone HOC-only simulator.
///
/// Shadow caches (HillClimbing baseline) and offline expert evaluation need
/// HOC hit/miss behaviour only; omitting the DC makes them several times
/// cheaper and — because HOC admission depends only on per-object frequency,
/// size and recency, not on DC state — exactly as accurate for HOC metrics.
pub struct HocSim {
    hoc: Store,
    policy: ThresholdPolicy,
    freq: FreqTracker,
    last_access: HashMap<ObjectId, u64>,
    metrics: CacheMetrics,
}

impl HocSim {
    /// HOC-only simulator with the given capacity, eviction and expert.
    pub fn new(hoc_bytes: u64, eviction: EvictionKind, policy: ThresholdPolicy) -> Self {
        Self {
            hoc: Store::new(hoc_bytes, eviction),
            policy,
            freq: FreqTracker::new(FrequencyMode::Exact),
            last_access: HashMap::new(),
            metrics: CacheMetrics::default(),
        }
    }

    /// LRU HOC with the paper's default size.
    pub fn paper_default(policy: ThresholdPolicy) -> Self {
        Self::new(100 * 1024 * 1024, EvictionKind::Lru, policy)
    }

    /// The installed expert.
    pub fn policy(&self) -> ThresholdPolicy {
        self.policy
    }

    /// Swaps the expert in place (state is retained — this is what deploying
    /// a new expert on a warm cache does).
    pub fn set_policy(&mut self, policy: ThresholdPolicy) {
        self.policy = policy;
    }

    /// Cumulative metrics. Only HOC-related counters are populated; requests
    /// not served by the HOC are counted as origin fetches.
    pub fn metrics(&self) -> CacheMetrics {
        self.metrics
    }

    /// Processes one request; returns true on a HOC hit.
    pub fn process(&mut self, req: &Request) -> bool {
        let frequency = self.freq.increment(req.id);
        let recency_us = self
            .last_access
            .insert(req.id, req.timestamp_us)
            .map(|prev| req.timestamp_us.saturating_sub(prev));

        self.metrics.requests += 1;
        self.metrics.bytes_total += req.size;

        if self.hoc.touch(req.id) {
            self.metrics.hoc_hits += 1;
            self.metrics.bytes_hoc_hit += req.size;
            return true;
        }
        self.metrics.origin_fetches += 1;
        self.metrics.bytes_origin += req.size;

        let view =
            ObjectView { id: req.id, size: req.size, frequency, recency_us, now_us: req.timestamp_us };
        let mut policy = self.policy;
        if policy.admit(&view) {
            let evicted = self.hoc.insert(req.id, req.size);
            if self.hoc.contains(req.id) {
                self.metrics.hoc_writes += 1;
                self.metrics.hoc_write_bytes += req.size;
            }
            self.metrics.hoc_evictions += evicted.len() as u64;
        }
        false
    }

    /// Runs a whole trace, returning the per-request HOC hit indicators —
    /// the raw material for cross-expert predictor training (§4.1 needs the
    /// joint hit/miss behaviour of expert pairs on the same trace).
    pub fn run_trace_recording(&mut self, trace: &darwin_trace::Trace) -> Vec<bool> {
        trace.iter().map(|r| self.process(r)).collect()
    }

    /// Runs a whole trace, returning the metrics window for it.
    pub fn run_trace(&mut self, trace: &darwin_trace::Trace) -> CacheMetrics {
        let before = self.metrics;
        for r in trace {
            self.process(r);
        }
        self.metrics.diff(&before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AlwaysAdmit;
    use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};

    fn req(id: u64, size: u64, ts: u64) -> Request {
        Request::new(id, size, ts)
    }

    #[test]
    fn second_request_admits_to_dc_not_first() {
        let mut s = CacheServer::new(CacheConfig::small_test());
        s.set_policy(ThresholdPolicy::new(100, 1)); // effectively never admit to HOC
        assert_eq!(s.process(&req(1, 100, 0)), RequestOutcome::OriginFetch);
        assert_eq!(s.metrics().dc_writes, 0, "one-hit wonder must not be written to DC");
        assert_eq!(s.process(&req(1, 100, 1)), RequestOutcome::OriginFetch);
        assert_eq!(s.metrics().dc_writes, 1, "second request admits to DC");
        assert_eq!(s.process(&req(1, 100, 2)), RequestOutcome::DcHit);
    }

    #[test]
    fn hoc_promotion_respects_f_threshold() {
        let mut s = CacheServer::new(CacheConfig::small_test());
        s.set_policy(ThresholdPolicy::new(2, 1024 * 1024));
        // Requests 1 and 2: freq 1,2 ≤ f=2 ⇒ no promotion.
        s.process(&req(7, 100, 0));
        s.process(&req(7, 100, 1));
        assert_eq!(s.metrics().hoc_writes, 0);
        // Request 3: freq 3 > 2 ⇒ promoted.
        let out = s.process(&req(7, 100, 2));
        assert_eq!(out, RequestOutcome::DcHit);
        assert_eq!(s.metrics().hoc_writes, 1);
        // Request 4: HOC hit.
        assert_eq!(s.process(&req(7, 100, 3)), RequestOutcome::HocHit);
    }

    #[test]
    fn hoc_promotion_respects_size_threshold() {
        let mut s = CacheServer::new(CacheConfig::small_test());
        s.set_policy(ThresholdPolicy::new(0, 50));
        s.process(&req(1, 51, 0));
        s.process(&req(1, 51, 1));
        assert_eq!(s.metrics().hoc_writes, 0, "oversized object promoted");
        s.process(&req(2, 50, 2));
        assert_eq!(s.metrics().hoc_writes, 1, "size-threshold object not promoted");
    }

    #[test]
    fn promotion_can_happen_from_origin_fetch_path() {
        // f=1: the 2nd request admits; the 2nd request is also the one that
        // admits into the DC, so HOC promotion happens on the origin path.
        let mut s = CacheServer::new(CacheConfig::small_test());
        s.set_policy(ThresholdPolicy::new(1, 1024));
        s.process(&req(3, 10, 0));
        assert_eq!(s.process(&req(3, 10, 1)), RequestOutcome::OriginFetch);
        assert_eq!(s.metrics().hoc_writes, 1);
        assert_eq!(s.process(&req(3, 10, 2)), RequestOutcome::HocHit);
    }

    #[test]
    fn metrics_accounting_is_consistent() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 3).generate(30_000);
        let mut s = CacheServer::new(CacheConfig::small_test());
        s.set_policy(ThresholdPolicy::new(1, 200 * 1024));
        let m = s.process_trace(&trace);
        assert_eq!(m.requests as usize, trace.len());
        assert_eq!(m.hoc_hits + m.dc_hits + m.origin_fetches, m.requests);
        assert_eq!(m.bytes_hoc_hit + m.bytes_dc_hit + m.bytes_origin, m.bytes_total);
        assert!(m.hoc_ohr() > 0.0, "some HOC hits expected");
        assert!(s.hoc_used_bytes() <= s.config().hoc_bytes);
        assert!(s.dc_used_bytes() <= s.config().dc_bytes);
    }

    #[test]
    fn always_admit_gives_upper_bound_hoc_traffic() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 4).generate(20_000);
        let mut strict = CacheServer::new(CacheConfig::small_test());
        strict.set_policy(ThresholdPolicy::new(50, 10));
        let m_strict = strict.process_trace(&trace);

        let mut open = CacheServer::new(CacheConfig::small_test());
        open.set_policy(AlwaysAdmit);
        let m_open = open.process_trace(&trace);

        assert!(m_open.hoc_writes > m_strict.hoc_writes);
    }

    #[test]
    fn hocsim_matches_cacheserver_hoc_behaviour() {
        // With a DC large enough to never evict, HOC hit sequences of the
        // full server and the HOC-only sim must be identical.
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 5).generate(20_000);
        let policy = ThresholdPolicy::new(2, 100 * 1024);

        let mut full =
            CacheServer::new(CacheConfig { dc_bytes: u64::MAX / 2, ..CacheConfig::small_test() });
        full.set_policy(policy);
        let full_hits: Vec<bool> = trace.iter().map(|r| full.process(r).is_hoc_hit()).collect();

        let mut sim = HocSim::new(1024 * 1024, EvictionKind::Lru, policy);
        let sim_hits = sim.run_trace_recording(&trace);

        assert_eq!(full_hits, sim_hits);
    }

    #[test]
    fn policy_swap_retains_cache_state() {
        let mut sim = HocSim::new(10_000, EvictionKind::Lru, ThresholdPolicy::new(0, 10_000));
        sim.process(&req(1, 100, 0)); // admitted (f=0 ⇒ first request admits)
        sim.set_policy(ThresholdPolicy::new(100, 1)); // never admit from now on
        assert!(sim.process(&req(1, 100, 1)), "object admitted earlier must still hit");
    }

    #[test]
    fn recency_knob_requires_recent_rerequest() {
        let mut sim =
            HocSim::new(10_000, EvictionKind::Lru, ThresholdPolicy::with_recency(0, 10_000, 100));
        sim.process(&req(1, 10, 0)); // first sighting: no recency ⇒ no admit
        assert!(!sim.process(&req(1, 10, 500)), "gap 500 > r=100 ⇒ not admitted before");
        // gap 50 ≤ 100 ⇒ admitted now.
        assert!(!sim.process(&req(1, 10, 550)));
        assert!(sim.process(&req(1, 10, 560)), "admitted on previous request ⇒ hit");
    }

    #[test]
    fn empty_trace_yields_zero_window() {
        let mut s = CacheServer::new(CacheConfig::small_test());
        let m = s.process_trace(&Trace::default());
        assert_eq!(m, CacheMetrics::default());
    }

    #[test]
    fn save_restore_resumes_bitwise_identically() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 9).generate(20_000);
        let policy = ThresholdPolicy::new(2, 100 * 1024);
        let mut original = CacheServer::new(CacheConfig::small_test());
        original.set_policy(policy);
        let (head, tail) = (&trace.requests()[..12_000], &trace.requests()[12_000..]);
        for r in head {
            original.process(r);
        }

        let bytes = original.save_state();
        let mut restored = CacheServer::restore_state(CacheConfig::small_test(), &bytes).unwrap();
        restored.set_policy(policy);
        assert_eq!(restored.metrics(), original.metrics());
        assert_eq!(restored.hoc_used_bytes(), original.hoc_used_bytes());
        assert_eq!(restored.dc_used_bytes(), original.dc_used_bytes());
        // Re-saving the restored server is bit-identical (canonical codec).
        assert_eq!(restored.save_state(), bytes);

        // Both servers process the tail identically, outcome by outcome.
        for r in tail {
            assert_eq!(original.process(r), restored.process(r), "diverged at {}", r.id);
        }
        assert_eq!(restored.metrics(), original.metrics());
        assert_eq!(restored.hoc_used_bytes(), original.hoc_used_bytes());
        assert_eq!(restored.dc_used_bytes(), original.dc_used_bytes());
    }

    #[test]
    fn save_restore_roundtrips_sketch_mode_too() {
        let cfg = CacheConfig {
            frequency: FrequencyMode::Sketch { expected_objects: 4096 },
            ..CacheConfig::small_test()
        };
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 6).generate(10_000);
        let mut original = CacheServer::new(cfg.clone());
        for r in &trace {
            original.process(r);
        }
        let bytes = original.save_state();
        let restored = CacheServer::restore_state(cfg, &bytes).unwrap();
        assert_eq!(restored.metrics(), original.metrics());
        assert_eq!(restored.save_state(), bytes);
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let mut s = CacheServer::new(CacheConfig::small_test());
        s.process(&req(1, 100, 0));
        let bytes = s.save_state();
        let bigger = CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() };
        assert!(matches!(
            CacheServer::restore_state(bigger, &bytes),
            Err(darwin_ckpt::CkptError::Malformed(_))
        ));
        let sketchy = CacheConfig {
            frequency: FrequencyMode::Sketch { expected_objects: 64 },
            ..CacheConfig::small_test()
        };
        assert!(CacheServer::restore_state(sketchy, &bytes).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Request and byte accounting always balances across the levels,
        /// and capacities are never exceeded.
        #[test]
        fn conservation_laws(
            reqs in proptest::collection::vec((0u64..50, 1u64..200_000), 1..400)
        ) {
            let mut s = CacheServer::new(CacheConfig {
                hoc_bytes: 256 * 1024,
                dc_bytes: 4 * 1024 * 1024,
                ..CacheConfig::small_test()
            });
            s.set_policy(ThresholdPolicy::new(1, 100 * 1024));
            let mut sizes = std::collections::HashMap::new();
            for (i, (id, size)) in reqs.iter().enumerate() {
                // Object sizes must be consistent within a trace.
                let size = *sizes.entry(*id).or_insert(*size);
                s.process(&Request::new(*id, size, i as u64));
                let m = s.metrics();
                prop_assert_eq!(m.hoc_hits + m.dc_hits + m.origin_fetches, m.requests);
                prop_assert_eq!(
                    m.bytes_hoc_hit + m.bytes_dc_hit + m.bytes_origin,
                    m.bytes_total
                );
                prop_assert!(s.hoc_used_bytes() <= 256 * 1024);
                prop_assert!(s.dc_used_bytes() <= 4 * 1024 * 1024);
            }
        }

        /// Arbitrary request prefixes roundtrip through save/restore with a
        /// canonical encoding, and the restored server replays any suffix
        /// bitwise-identically to the original.
        #[test]
        fn save_restore_roundtrip_arbitrary_state(
            prefix in proptest::collection::vec((0u64..60, 1u64..150_000), 1..300),
            suffix in proptest::collection::vec((0u64..60, 1u64..150_000), 0..100),
        ) {
            let cfg = CacheConfig {
                hoc_bytes: 256 * 1024,
                dc_bytes: 4 * 1024 * 1024,
                ..CacheConfig::small_test()
            };
            let policy = ThresholdPolicy::new(1, 100 * 1024);
            let mut original = CacheServer::new(cfg.clone());
            original.set_policy(policy);
            let mut sizes = std::collections::HashMap::new();
            for (i, (id, size)) in prefix.iter().enumerate() {
                let size = *sizes.entry(*id).or_insert(*size);
                original.process(&Request::new(*id, size, i as u64));
            }

            let bytes = original.save_state();
            let mut restored = CacheServer::restore_state(cfg, &bytes).unwrap();
            restored.set_policy(policy);
            prop_assert_eq!(restored.save_state(), bytes.clone());
            prop_assert_eq!(restored.metrics(), original.metrics());

            for (i, (id, size)) in suffix.iter().enumerate() {
                let size = *sizes.entry(*id).or_insert(*size);
                let at = (prefix.len() + i) as u64;
                let a = original.process(&Request::new(*id, size, at));
                let b = restored.process(&Request::new(*id, size, at));
                prop_assert_eq!(a, b, "restored server diverged");
            }
            prop_assert_eq!(restored.metrics(), original.metrics());
            prop_assert_eq!(restored.hoc_used_bytes(), original.hoc_used_bytes());
            prop_assert_eq!(restored.dc_used_bytes(), original.dc_used_bytes());
        }

        /// Any truncation or single-bit flip of saved state is rejected with
        /// an error — never a panic, never a silently inconsistent server.
        #[test]
        fn corrupt_save_state_never_restores(
            prefix in proptest::collection::vec((0u64..40, 1u64..100_000), 1..150),
            cut in 0.0f64..1.0,
            flip in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let cfg = CacheConfig {
                hoc_bytes: 256 * 1024,
                dc_bytes: 4 * 1024 * 1024,
                ..CacheConfig::small_test()
            };
            let mut s = CacheServer::new(cfg.clone());
            let mut sizes = std::collections::HashMap::new();
            for (i, (id, size)) in prefix.iter().enumerate() {
                let size = *sizes.entry(*id).or_insert(*size);
                s.process(&Request::new(*id, size, i as u64));
            }
            let bytes = s.save_state();
            // Truncation: always an error (body must be consumed exactly).
            let keep = ((cut * bytes.len() as f64) as usize).min(bytes.len() - 1);
            prop_assert!(CacheServer::restore_state(cfg.clone(), &bytes[..keep]).is_err());
            // Bit flip: either detected, or the restored server still upholds
            // its structural invariants (the outer frame CRC is what makes
            // flips always-detected end to end; the body decoder must merely
            // never panic or break invariants).
            let mut bad = bytes.clone();
            let byte = ((flip * bad.len() as f64) as usize).min(bad.len() - 1);
            bad[byte] ^= 1 << bit;
            if let Ok(r) = CacheServer::restore_state(cfg.clone(), &bad) {
                prop_assert!(r.hoc_used_bytes() <= cfg.hoc_bytes);
                prop_assert!(r.dc_used_bytes() <= cfg.dc_bytes);
            }
        }
    }
}
