#![warn(missing_docs)]

//! # darwin-cache
//!
//! A two-level CDN cache simulator: a small, fast **Hot Object Cache** (HOC)
//! in front of a large **Disk Cache** (DC), as described in §2.2 / Figure 1
//! of the Darwin paper and modeled after the LRB simulator the authors built
//! on.
//!
//! Request flow (paper §2.2):
//!
//! 1. If the object is in the HOC → HOC hit, served from memory.
//! 2. Else if in the DC → DC hit; the object *may be promoted* into the HOC
//!    according to the HOC **admission policy** (Darwin's experts live here).
//! 3. Else → miss; fetched from origin. The DC admits the object only on its
//!    second request, tracked with a Bloom filter, to keep "one-hit wonders"
//!    (≈70 % of unique objects) from wasting disk writes.
//!
//! Both levels evict with a pluggable [`eviction`] policy (LRU by default, as
//! in the paper's simulations). All byte/hit accounting needed by the paper's
//! metrics — object hit rate (OHR), byte miss ratio (BMR), disk writes — is
//! collected in [`metrics::CacheMetrics`].
//!
//! ```
//! use darwin_cache::{CacheConfig, CacheServer, ThresholdPolicy};
//! use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
//!
//! let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1).generate(50_000);
//! let mut server = CacheServer::new(CacheConfig::small_test());
//! server.set_policy(ThresholdPolicy::new(2, 100 * 1024)); // f=2, s=100 KB
//! for r in &trace {
//!     server.process(r);
//! }
//! let m = server.metrics();
//! assert!(m.hoc_ohr() >= 0.0 && m.hoc_ohr() <= 1.0);
//! ```

pub mod bloom;
pub mod eviction;
pub mod metrics;
pub mod objective;
pub mod policy;
pub mod server;

pub use bloom::{BloomFilter, FrequencySketch};
pub use eviction::{EvictionKind, Store};
pub use metrics::CacheMetrics;
pub use objective::Objective;
pub use policy::{AdmissionPolicy, ObjectView, ThresholdPolicy};
pub use server::{CacheConfig, CacheServer, HocSim, RequestOutcome};
