//! Bloom filter and frequency sketch.
//!
//! Production CDNs record (but do not admit) the first request of an object
//! in a Bloom filter so that the disk cache only admits on the second request
//! (§2.2, citing Maggs & Sitaraman's "algorithmic nuggets"). The HOC
//! admission experts additionally need an approximate per-object request
//! count to evaluate the frequency threshold *f*; the [`FrequencySketch`]
//! provides it with bounded memory (a conservative-update counting Bloom
//! sketch with periodic halving, as in TinyLFU).

use darwin_ckpt::{CkptError, Dec, Enc};
use darwin_trace::ObjectId;

/// Double-hashing seeds (large odd constants; quality is adequate for cache
/// admission purposes and keeps the hot path branch-free).
const H1: u64 = 0x9E37_79B9_7F4A_7C15;
const H2: u64 = 0xC2B2_AE3D_27D4_EB4F;

fn mix(id: ObjectId, round: u64) -> u64 {
    let mut x = id ^ round.wrapping_mul(H2);
    x ^= x >> 33;
    x = x.wrapping_mul(H1);
    x ^= x >> 29;
    x = x.wrapping_mul(H2);
    x ^= x >> 32;
    x
}

/// A plain (set-membership) Bloom filter over object IDs.
///
/// Guarantees no false negatives; false-positive rate is set by sizing. Used
/// by the DC's one-hit-wonder filter.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// A filter sized for roughly `expected_items` with ~1 % false positives
    /// (≈10 bits/item, 4 hash functions — close to optimal for 1 %).
    pub fn with_capacity(expected_items: usize) -> Self {
        let bits_needed = (expected_items.max(64) as u64) * 10;
        let words = (bits_needed / 64).next_power_of_two();
        Self { bits: vec![0; words as usize], mask: words * 64 - 1, k: 4, inserted: 0 }
    }

    /// Inserts `id`. Returns whether it was (probably) already present —
    /// i.e. `true` means "seen before" (up to false positives).
    pub fn insert(&mut self, id: ObjectId) -> bool {
        let mut seen = true;
        for round in 0..self.k {
            let bit = mix(id, round as u64) & self.mask;
            let (w, b) = ((bit / 64) as usize, bit % 64);
            if self.bits[w] & (1 << b) == 0 {
                seen = false;
                self.bits[w] |= 1 << b;
            }
        }
        if !seen {
            self.inserted += 1;
        }
        seen
    }

    /// Membership query (no false negatives).
    pub fn contains(&self, id: ObjectId) -> bool {
        (0..self.k).all(|round| {
            let bit = mix(id, round as u64) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Number of distinct inserts observed (approximate: double-inserts that
    /// were false positives are not counted).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// Serializes the filter (bit words, hash count, insert counter).
    pub fn encode_state(&self, enc: &mut Enc) {
        enc.u32(self.k);
        enc.u64(self.inserted);
        enc.seq(&self.bits, |e, &w| e.u64(w));
    }

    /// Rebuilds a filter from bytes written by [`BloomFilter::encode_state`].
    /// The word count must be a power of two (the mask is derived from it).
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let k = dec.u32()?;
        if k == 0 || k > 16 {
            return Err(CkptError::Malformed(format!("bloom hash count {k}")));
        }
        let inserted = dec.u64()?;
        let bits = dec.seq(|d| d.u64())?;
        let words = bits.len() as u64;
        if words == 0 || !words.is_power_of_two() {
            return Err(CkptError::Malformed(format!("bloom word count {words}")));
        }
        Ok(Self { bits, mask: words * 64 - 1, k, inserted })
    }
}

/// A conservative-update counting sketch with periodic halving ("aging"), à
/// la TinyLFU: estimates per-object request counts with bounded memory and a
/// sliding emphasis on recent traffic. Estimates never under-count within an
/// aging window (conservative update ⇒ over-approximation only).
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    counters: Vec<u8>,
    mask: u64,
    k: u32,
    /// Increments since the last halving.
    ops: u64,
    /// Halve all counters after this many increments (10× table size by
    /// default); keeps estimates fresh under traffic-mix shifts.
    aging_period: u64,
}

impl FrequencySketch {
    /// Sketch sized for roughly `expected_objects` concurrently-tracked
    /// objects (8 counters/object keeps collision noise low).
    pub fn with_capacity(expected_objects: usize) -> Self {
        let slots = ((expected_objects.max(64) as u64) * 8).next_power_of_two();
        Self {
            counters: vec![0; slots as usize],
            mask: slots - 1,
            k: 4,
            ops: 0,
            aging_period: slots * 10,
        }
    }

    /// Records one request for `id` and returns the updated estimate
    /// (including this request). Saturates at 255.
    pub fn increment(&mut self, id: ObjectId) -> u32 {
        self.ops += 1;
        if self.ops >= self.aging_period {
            self.age();
        }
        let mut slots = [0usize; 8];
        let mut est = u8::MAX;
        for round in 0..self.k {
            let slot = (mix(id, round as u64) & self.mask) as usize;
            slots[round as usize] = slot;
            est = est.min(self.counters[slot]);
        }
        // Conservative update: only bump the minimal counters.
        let new = est.saturating_add(1);
        for &slot in &slots[..self.k as usize] {
            if self.counters[slot] < new {
                self.counters[slot] = new;
            }
        }
        new as u32
    }

    /// Current estimate without recording a request.
    pub fn estimate(&self, id: ObjectId) -> u32 {
        (0..self.k)
            .map(|round| self.counters[(mix(id, round as u64) & self.mask) as usize])
            .min()
            .unwrap_or(0) as u32
    }

    /// Halves every counter (aging).
    pub fn age(&mut self) {
        self.counters.iter_mut().for_each(|c| *c >>= 1);
        self.ops = 0;
    }

    /// Resets all counters to zero.
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.ops = 0;
    }

    /// Serializes the sketch (counters, hash count, aging state).
    pub fn encode_state(&self, enc: &mut Enc) {
        enc.u32(self.k);
        enc.u64(self.ops);
        enc.u64(self.aging_period);
        enc.bytes(&self.counters);
    }

    /// Rebuilds a sketch from bytes written by
    /// [`FrequencySketch::encode_state`]. The slot count must be a power of
    /// two and the hash count must fit the fixed slot buffer.
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let k = dec.u32()?;
        if k == 0 || k > 8 {
            return Err(CkptError::Malformed(format!("sketch hash count {k}")));
        }
        let ops = dec.u64()?;
        let aging_period = dec.u64()?;
        let counters = dec.bytes()?.to_vec();
        let slots = counters.len() as u64;
        if slots == 0 || !slots.is_power_of_two() {
            return Err(CkptError::Malformed(format!("sketch slot count {slots}")));
        }
        Ok(Self { counters, mask: slots - 1, k, ops, aging_period })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_no_false_negatives() {
        let mut b = BloomFilter::with_capacity(1000);
        for id in 0..1000u64 {
            b.insert(id);
        }
        for id in 0..1000u64 {
            assert!(b.contains(id), "false negative for {id}");
        }
    }

    #[test]
    fn bloom_false_positive_rate_bounded() {
        let mut b = BloomFilter::with_capacity(10_000);
        for id in 0..10_000u64 {
            b.insert(id);
        }
        let fps = (100_000..200_000u64).filter(|&id| b.contains(id)).count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate {rate} too high");
    }

    #[test]
    fn bloom_insert_reports_first_vs_repeat() {
        let mut b = BloomFilter::with_capacity(100);
        assert!(!b.insert(42), "first insert must report unseen");
        assert!(b.insert(42), "second insert must report seen");
        assert_eq!(b.inserted(), 1);
    }

    #[test]
    fn bloom_clear_empties() {
        let mut b = BloomFilter::with_capacity(100);
        b.insert(7);
        b.clear();
        assert!(!b.contains(7));
        assert_eq!(b.inserted(), 0);
    }

    #[test]
    fn sketch_counts_single_object() {
        let mut s = FrequencySketch::with_capacity(1000);
        for i in 1..=20u32 {
            assert_eq!(s.increment(99), i);
        }
        assert_eq!(s.estimate(99), 20);
    }

    #[test]
    fn sketch_never_undercounts_without_aging() {
        let mut s = FrequencySketch::with_capacity(4096);
        let mut truth = std::collections::HashMap::new();
        // Pseudo-random workload, small enough to avoid aging.
        let mut x = 12345u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = (x >> 33) % 500;
            *truth.entry(id).or_insert(0u32) += 1;
            s.increment(id);
        }
        for (&id, &c) in &truth {
            assert!(s.estimate(id) >= c.min(255), "under-count for {id}");
        }
    }

    #[test]
    fn sketch_aging_halves() {
        let mut s = FrequencySketch::with_capacity(64);
        for _ in 0..10 {
            s.increment(5);
        }
        let before = s.estimate(5);
        s.age();
        assert_eq!(s.estimate(5), before / 2);
    }

    #[test]
    fn sketch_saturates_at_255() {
        let mut s = FrequencySketch::with_capacity(64);
        s.aging_period = u64::MAX; // disable aging for this test
        for _ in 0..300 {
            s.increment(1);
        }
        assert_eq!(s.estimate(1), 255);
    }

    #[test]
    fn sketch_aging_halves_every_counter_exactly() {
        // Every estimate must follow c -> floor(c / 2) on each aging step,
        // for a spread of ids and counts (not just one object).
        let mut s = FrequencySketch::with_capacity(1024);
        s.aging_period = u64::MAX; // only age explicitly
        for id in 0..50u64 {
            for _ in 0..(1 + id % 7) {
                s.increment(id);
            }
        }
        let before: Vec<u32> = (0..50u64).map(|id| s.estimate(id)).collect();
        s.age();
        for id in 0..50u64 {
            assert_eq!(s.estimate(id), before[id as usize] / 2, "id {id}");
        }
    }

    #[test]
    fn sketch_aging_never_underflows() {
        let mut s = FrequencySketch::with_capacity(64);
        s.increment(9);
        // Far more halvings than bits: counters must pin at 0, never wrap.
        for _ in 0..100 {
            s.age();
        }
        assert_eq!(s.estimate(9), 0);
        // A fresh increment after heavy aging starts from 1 again.
        assert_eq!(s.increment(9), 1);
    }

    #[test]
    fn sketch_automatic_aging_triggers_at_period() {
        let mut s = FrequencySketch::with_capacity(64);
        // A short explicit period keeps the test exact: padding with
        // thousands of distinct ids (the default period) would collide with
        // the tracked id's counters and obscure the boundary.
        s.aging_period = 16;
        for _ in 0..10 {
            s.increment(77);
        }
        // Filler ops up to (but not past) the boundary. A colliding slot can
        // only be *raised* by conservative update, never lowered, and the
        // filler's counts stay below 10, so the tracked minimum is stable.
        for _ in 0..5 {
            s.increment(88);
        }
        assert_eq!(s.estimate(77), 10, "no aging before the period boundary");
        // The 16th increment crosses the period: every counter halves
        // (10 -> 5) before the request is counted.
        s.increment(88);
        assert_eq!(s.estimate(77), 5, "aging did not fire at the period boundary");
    }

    #[test]
    fn exact_and_sketch_agree_below_error_bound() {
        // A workload whose distinct-object count is far below the sketch
        // capacity and whose length stays below the aging period must be
        // counted *exactly* (conservative update can only over-count on
        // collisions, and collisions are negligible at this load factor).
        let mut sketch = FrequencySketch::with_capacity(4096);
        let mut exact: std::collections::HashMap<ObjectId, u32> = std::collections::HashMap::new();
        let mut x = 99u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = (x >> 40) % 64; // 64 distinct objects in a 4096-object sketch
            let e = exact.entry(id).or_insert(0);
            *e += 1;
            let got = sketch.increment(id);
            assert_eq!(got, *e, "sketch diverged from exact count for {id}");
        }
        for (&id, &c) in &exact {
            assert_eq!(sketch.estimate(id), c, "post-hoc estimate for {id}");
        }
    }

    #[test]
    fn bloom_and_sketch_codecs_roundtrip() {
        let mut b = BloomFilter::with_capacity(500);
        let mut s = FrequencySketch::with_capacity(500);
        for id in 0..300u64 {
            b.insert(id);
            s.increment(id % 40);
        }
        let mut enc = Enc::new();
        b.encode_state(&mut enc);
        s.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let rb = BloomFilter::decode_state(&mut dec).unwrap();
        let rs = FrequencySketch::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(rb.inserted(), b.inserted());
        for id in 0..400u64 {
            assert_eq!(rb.contains(id), b.contains(id), "bloom diverged at {id}");
            assert_eq!(rs.estimate(id), s.estimate(id), "sketch diverged at {id}");
        }
        // Future behaviour identical too.
        assert_eq!(rs.clone().increment(7), s.clone().increment(7));
    }

    #[test]
    fn bloom_and_sketch_codecs_reject_bad_shapes() {
        let mut enc = Enc::new();
        enc.u32(4);
        enc.u64(0);
        enc.seq(&[0u64; 3], |e, &w| e.u64(w)); // 3 words: not a power of two
        let bytes = enc.into_bytes();
        assert!(BloomFilter::decode_state(&mut Dec::new(&bytes)).is_err());

        let mut enc = Enc::new();
        enc.u32(0); // zero hash functions
        enc.u64(0);
        enc.u64(10);
        enc.bytes(&[0u8; 64]);
        let bytes = enc.into_bytes();
        assert!(FrequencySketch::decode_state(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn sketch_clear_zeroes() {
        let mut s = FrequencySketch::with_capacity(64);
        s.increment(3);
        s.clear();
        assert_eq!(s.estimate(3), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Anything inserted is always reported present.
        #[test]
        fn bloom_membership_after_insert(ids in proptest::collection::vec(0u64..1_000_000, 1..500)) {
            let mut b = BloomFilter::with_capacity(1000);
            for &id in &ids {
                b.insert(id);
            }
            for &id in &ids {
                prop_assert!(b.contains(id));
            }
        }

        /// Conservative update ⇒ estimate ≥ true count (capped), when no
        /// aging occurs.
        #[test]
        fn sketch_overapproximates(ids in proptest::collection::vec(0u64..64, 1..400)) {
            let mut s = FrequencySketch::with_capacity(2048);
            let mut truth = std::collections::HashMap::new();
            for &id in &ids {
                *truth.entry(id).or_insert(0u32) += 1;
                s.increment(id);
            }
            for (&id, &c) in &truth {
                prop_assert!(s.estimate(id) >= c.min(255));
            }
        }
    }
}
