//! Caching objectives.
//!
//! One of Darwin's central claims (R3, §3.2.1) is objective flexibility: the
//! same framework optimizes hardware-independent metrics (OHR), cost metrics
//! (BMR) and hardware-dependent resource metrics (disk writes) by swapping
//! the *reward* used offline (to rank experts per cluster) and online (as the
//! bandit's payoff). [`Objective`] is that swap point: it maps a metrics
//! window to a scalar reward where **larger is always better**.

use crate::metrics::CacheMetrics;
use serde::{Deserialize, Serialize};

/// A scalarized caching objective (larger reward = better).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize HOC object hit rate (the paper's primary setting, §4).
    HocOhr,
    /// Maximize overall (HOC + DC) object hit rate.
    TotalOhr,
    /// Minimize HOC byte miss ratio (reward = 1 − BMR_HOC); §6.3, Fig 6a.
    HocBmr,
    /// Maximize `OHR − weight · DiskWrite/#Requests` where disk-write bytes
    /// are approximated by HOC-missed bytes and normalized per MiB, as in
    /// §6.3 / Fig 6b. `weight` trades hit rate against SSD wear; the paper's
    /// experiments use an unspecified linear combination, so the weight is a
    /// parameter here.
    OhrMinusDiskWrites {
        /// Reward deducted per MiB of HOC-missed bytes per request.
        weight_per_mib: f64,
    },
}

impl Objective {
    /// The paper's default combined objective (Fig 6b) with a weight that
    /// puts the disk-write term on the same scale as OHR for the evaluation
    /// traces (mean object size in the hundreds of KB ⇒ missed MiB/request
    /// is O(0.1)).
    pub fn combined_default() -> Self {
        Objective::OhrMinusDiskWrites { weight_per_mib: 1.0 }
    }

    /// Scalar reward of a metrics window under this objective.
    pub fn reward(&self, window: &CacheMetrics) -> f64 {
        match *self {
            Objective::HocOhr => window.hoc_ohr(),
            Objective::TotalOhr => window.total_ohr(),
            Objective::HocBmr => 1.0 - window.hoc_bmr(),
            Objective::OhrMinusDiskWrites { weight_per_mib } => {
                let missed_mib_per_req = window.hoc_miss_bytes_per_request() / (1024.0 * 1024.0);
                window.hoc_ohr() - weight_per_mib * missed_mib_per_req
            }
        }
    }

    /// The headline *metric* value for reporting (what the paper's figures
    /// plot): OHR for hit-rate objectives, BMR (smaller better) for the BMR
    /// objective, the combined scalar for the combined objective.
    pub fn report_value(&self, window: &CacheMetrics) -> f64 {
        match *self {
            Objective::HocBmr => window.hoc_bmr(),
            _ => self.reward(window),
        }
    }

    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Objective::HocOhr => "hoc-ohr",
            Objective::TotalOhr => "total-ohr",
            Objective::HocBmr => "hoc-bmr",
            Objective::OhrMinusDiskWrites { .. } => "ohr-minus-diskwrites",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> CacheMetrics {
        CacheMetrics {
            requests: 100,
            hoc_hits: 60,
            dc_hits: 20,
            bytes_total: 200 * 1024 * 1024,
            bytes_hoc_hit: 120 * 1024 * 1024,
            ..Default::default()
        }
    }

    #[test]
    fn ohr_objective_is_hoc_ohr() {
        assert!((Objective::HocOhr.reward(&window()) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn bmr_objective_rewards_low_bmr() {
        let w = window(); // BMR = 80/200 = 0.4
        assert!((Objective::HocBmr.reward(&w) - 0.6).abs() < 1e-12);
        assert!((Objective::HocBmr.report_value(&w) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn combined_objective_penalizes_missed_bytes() {
        let w = window(); // missed 80 MiB over 100 requests = 0.8 MiB/req
        let obj = Objective::OhrMinusDiskWrites { weight_per_mib: 1.0 };
        assert!((obj.reward(&w) - (0.6 - 0.8)).abs() < 1e-12);
    }

    #[test]
    fn combined_weight_zero_reduces_to_ohr() {
        let obj = Objective::OhrMinusDiskWrites { weight_per_mib: 0.0 };
        assert!((obj.reward(&window()) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn total_ohr_counts_dc_hits() {
        assert!((Objective::TotalOhr.reward(&window()) - 0.8).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Hit-rate objectives stay in [0,1] for any consistent metrics
        /// window; the combined objective is bounded above by the OHR.
        #[test]
        fn reward_bounds(
            requests in 1u64..10_000,
            hit_frac in 0.0f64..=1.0,
            mean_size in 1u64..5_000_000,
        ) {
            let hoc_hits = (requests as f64 * hit_frac) as u64;
            let bytes_total = requests * mean_size;
            let bytes_hoc = hoc_hits * mean_size;
            let m = CacheMetrics {
                requests,
                hoc_hits,
                bytes_total,
                bytes_hoc_hit: bytes_hoc,
                ..Default::default()
            };
            for obj in [Objective::HocOhr, Objective::TotalOhr, Objective::HocBmr] {
                let r = obj.reward(&m);
                prop_assert!((0.0..=1.0).contains(&r), "{:?} reward {}", obj, r);
            }
            let combined = Objective::combined_default().reward(&m);
            prop_assert!(combined <= m.hoc_ohr() + 1e-12);
        }
    }
}
