//! HOC admission policies.
//!
//! Darwin's *experts* are threshold admission policies (§4): an expert
//! characterized by a tuple (f, s) "promotes to HOC all objects that occur
//! more than f times and … of size lesser than s". §6's extension experiments
//! add a third *recency* knob. [`ThresholdPolicy`] implements all three knobs;
//! other implementors cover the baselines (always-admit, probabilistic size
//! admission for AdaptSize).

use darwin_ckpt::{CkptError, Dec, Enc};
use darwin_trace::ObjectId;
use serde::{Deserialize, Serialize};

/// Everything an admission policy may inspect about the candidate object at
/// decision time. Assembled by the cache server on each non-HOC-hit request.
#[derive(Debug, Clone, Copy)]
pub struct ObjectView {
    /// Object being considered for HOC admission.
    pub id: ObjectId,
    /// Object size in bytes.
    pub size: u64,
    /// Estimated number of requests for this object so far, *including* the
    /// current one (from the frequency sketch; "a particular value of f
    /// implies that an object is let into the HOC upon the (1+f)-th request").
    pub frequency: u32,
    /// Microseconds since the previous request for this object, or `None` if
    /// this is its first observed request.
    pub recency_us: Option<u64>,
    /// Current request timestamp in microseconds.
    pub now_us: u64,
}

/// An HOC admission policy: decides whether a non-resident object should be
/// promoted into the HOC on this request.
pub trait AdmissionPolicy: Send {
    /// Returns true to admit the object into the HOC.
    fn admit(&mut self, view: &ObjectView) -> bool;

    /// Short human-readable label for logs and experiment output.
    fn label(&self) -> String;
}

/// The Darwin expert policy: admit iff the object has been requested strictly
/// more than `freq_threshold` times (so the (1+f)-th request admits), its
/// size is at most `size_threshold` bytes, and — when the recency knob is
/// active — it was last requested within `max_recency_us`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ThresholdPolicy {
    /// Frequency threshold f: admit on the (1+f)-th request.
    pub freq_threshold: u32,
    /// Size threshold s in bytes: admit only objects of size ≤ s.
    pub size_threshold: u64,
    /// Optional recency threshold r in microseconds: admit only objects whose
    /// previous request was at most r ago. `None` disables the knob.
    pub max_recency_us: Option<u64>,
}

impl ThresholdPolicy {
    /// Two-knob expert (f, s).
    pub fn new(freq_threshold: u32, size_threshold: u64) -> Self {
        Self { freq_threshold, size_threshold, max_recency_us: None }
    }

    /// Three-knob expert (f, s, r).
    pub fn with_recency(freq_threshold: u32, size_threshold: u64, max_recency_us: u64) -> Self {
        Self { freq_threshold, size_threshold, max_recency_us: Some(max_recency_us) }
    }

    /// Serializes the expert's three knobs.
    pub fn encode_state(&self, enc: &mut Enc) {
        enc.u32(self.freq_threshold);
        enc.u64(self.size_threshold);
        enc.opt(self.max_recency_us.as_ref(), |e, &r| e.u64(r));
    }

    /// Reads knobs written by [`ThresholdPolicy::encode_state`].
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            freq_threshold: dec.u32()?,
            size_threshold: dec.u64()?,
            max_recency_us: dec.opt(|d| d.u64())?,
        })
    }
}

impl AdmissionPolicy for ThresholdPolicy {
    fn admit(&mut self, view: &ObjectView) -> bool {
        if view.frequency <= self.freq_threshold {
            return false;
        }
        if view.size > self.size_threshold {
            return false;
        }
        if let Some(max_r) = self.max_recency_us {
            match view.recency_us {
                Some(r) if r <= max_r => {}
                // First sighting has no recency; with the knob active we
                // require an observed recent re-request.
                _ => return false,
            }
        }
        true
    }

    fn label(&self) -> String {
        match self.max_recency_us {
            Some(r) => {
                format!("f{}s{}r{}", self.freq_threshold, self.size_threshold / 1024, r / 1_000_000)
            }
            None => format!("f{}s{}", self.freq_threshold, self.size_threshold / 1024),
        }
    }
}

/// Admits everything (stress baseline / DC-style behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn admit(&mut self, _view: &ObjectView) -> bool {
        true
    }
    fn label(&self) -> String {
        "always".into()
    }
}

/// Admits nothing (isolates the DC path in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverAdmit;

impl AdmissionPolicy for NeverAdmit {
    fn admit(&mut self, _view: &ObjectView) -> bool {
        false
    }
    fn label(&self) -> String {
        "never".into()
    }
}

/// AdaptSize-style probabilistic size admission: admit with probability
/// `exp(-size / c)`. The AdaptSize baseline re-tunes `c` online; this type
/// only implements the per-request decision.
#[derive(Debug, Clone)]
pub struct ProbabilisticSizePolicy {
    /// The size parameter c in bytes.
    pub c: f64,
    rng_state: u64,
}

impl ProbabilisticSizePolicy {
    /// Policy with parameter `c` (bytes) and a deterministic RNG seed.
    pub fn new(c: f64, seed: u64) -> Self {
        assert!(c > 0.0, "c must be positive");
        Self { c, rng_state: seed.max(1) }
    }

    fn next_uniform(&mut self) -> f64 {
        // xorshift64*: adequate for admission coin flips, dependency-free.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl AdmissionPolicy for ProbabilisticSizePolicy {
    fn admit(&mut self, view: &ObjectView) -> bool {
        let p = (-(view.size as f64) / self.c).exp();
        self.next_uniform() < p
    }

    fn label(&self) -> String {
        format!("adaptsize-c{:.0}", self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(size: u64, freq: u32, recency: Option<u64>) -> ObjectView {
        ObjectView { id: 1, size, frequency: freq, recency_us: recency, now_us: 1_000_000 }
    }

    #[test]
    fn threshold_requires_strictly_more_than_f() {
        let mut p = ThresholdPolicy::new(2, 1000);
        assert!(!p.admit(&view(10, 1, None)));
        assert!(!p.admit(&view(10, 2, None)), "f=2 must reject the 2nd request");
        assert!(p.admit(&view(10, 3, None)), "f=2 admits on the 3rd request");
    }

    #[test]
    fn threshold_size_is_inclusive() {
        let mut p = ThresholdPolicy::new(0, 1000);
        assert!(p.admit(&view(1000, 1, None)));
        assert!(!p.admit(&view(1001, 1, None)));
    }

    #[test]
    fn recency_knob_gates_admission() {
        let mut p = ThresholdPolicy::with_recency(0, 1000, 500);
        assert!(p.admit(&view(10, 2, Some(400))));
        assert!(!p.admit(&view(10, 2, Some(501))));
        assert!(!p.admit(&view(10, 2, None)), "first sighting has no recency");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ThresholdPolicy::new(3, 20 * 1024).label(), "f3s20");
        assert_eq!(ThresholdPolicy::with_recency(3, 20 * 1024, 5_000_000).label(), "f3s20r5");
    }

    #[test]
    fn always_and_never() {
        assert!(AlwaysAdmit.admit(&view(u64::MAX, 0, None)));
        assert!(!NeverAdmit.admit(&view(1, 100, Some(1))));
    }

    #[test]
    fn probabilistic_size_small_usually_admitted_large_usually_not() {
        let mut p = ProbabilisticSizePolicy::new(10_000.0, 7);
        let small_admits = (0..1000).filter(|_| p.admit(&view(100, 1, None))).count();
        let large_admits = (0..1000).filter(|_| p.admit(&view(100_000, 1, None))).count();
        assert!(small_admits > 950, "small objects admitted only {small_admits}/1000");
        assert!(large_admits < 50, "large objects admitted {large_admits}/1000");
    }

    #[test]
    fn probabilistic_admission_rate_tracks_exponential() {
        // P(admit) at size = c must be ≈ e^{-1} ≈ 0.368.
        let mut p = ProbabilisticSizePolicy::new(5_000.0, 11);
        let admits = (0..20_000).filter(|_| p.admit(&view(5_000, 1, None))).count();
        let rate = admits as f64 / 20_000.0;
        assert!((rate - (-1.0f64).exp()).abs() < 0.02, "rate {rate}");
    }
}
