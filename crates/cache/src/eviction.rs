//! Byte-capacity object stores with pluggable eviction.
//!
//! The paper's simulations use LRU eviction at both cache levels ("using LRU
//! as our eviction algorithm", §3.1). FIFO, an LFU variant, and segmented
//! LRU (S4LRU-style, common in CDN HOCs for scan resistance) are provided
//! for the eviction-policy ablation. All stores account capacity in *bytes*
//! (CDN objects vary over 5+ orders of magnitude, so slot-count capacity
//! would be meaningless).
//!
//! Internally a single slab of intrusively doubly-linked nodes serves every
//! policy: plain LRU is segmented LRU with one segment; FIFO is one segment
//! with touches ignored; segmented LRU keeps `S` lists with per-segment byte
//! budgets, inserts into the lowest segment, promotes on hit, and demotes
//! overflowing tails downward (evicting from the bottom) — so a one-hit
//! scan can only churn the lowest segment.

use darwin_ckpt::{CkptError, Dec, Enc};
use darwin_trace::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which eviction policy a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionKind {
    /// Least-recently-used (paper default).
    Lru,
    /// First-in-first-out: insertion order, touches ignored.
    Fifo,
    /// Evict the entry with the smallest access count (ties: least recent).
    Lfu,
    /// Segmented LRU with the given number of segments (S4LRU ⇒ 4):
    /// scan-resistant, as deployed in production HOCs.
    SegmentedLru {
        /// Number of segments (≥ 1; 1 degenerates to plain LRU).
        segments: u8,
    },
}

impl EvictionKind {
    fn num_segments(self) -> usize {
        match self {
            EvictionKind::SegmentedLru { segments } => segments.max(1) as usize,
            _ => 1,
        }
    }
}

/// A byte-capacity object store.
///
/// `insert` admits an object unconditionally, evicting as needed to fit;
/// objects larger than the whole store are rejected (returned as not
/// inserted). `touch` records an access for recency/frequency bookkeeping.
///
/// ```
/// use darwin_cache::eviction::Store;
///
/// let mut hoc = Store::lru(30);
/// hoc.insert(1, 10);
/// hoc.insert(2, 10);
/// hoc.insert(3, 10);
/// hoc.touch(1); // 1 is now most-recent; 2 is the LRU victim
/// let evicted = hoc.insert(4, 10);
/// assert_eq!(evicted, vec![(2, 10)]);
/// ```
#[derive(Debug, Clone)]
pub struct Store {
    kind: EvictionKind,
    capacity: u64,
    used: u64,
    map: HashMap<ObjectId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Per-segment list heads (most-recent end) and tails (eviction end).
    heads: Vec<usize>,
    tails: Vec<usize>,
    /// Bytes resident per segment.
    seg_used: Vec<u64>,
    /// Monotone access clock for LFU tie-breaking.
    clock: u64,
}

#[derive(Debug, Clone)]
struct Node {
    id: ObjectId,
    size: u64,
    prev: usize,
    next: usize,
    segment: usize,
    hits: u64,
    last_touch: u64,
}

const NIL: usize = usize::MAX;

impl Store {
    /// Creates a store with the given byte capacity and eviction policy.
    pub fn new(capacity_bytes: u64, kind: EvictionKind) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        let segs = kind.num_segments();
        Self {
            kind,
            capacity: capacity_bytes,
            used: 0,
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; segs],
            tails: vec![NIL; segs],
            seg_used: vec![0; segs],
            clock: 0,
        }
    }

    /// LRU store (the common case).
    pub fn lru(capacity_bytes: u64) -> Self {
        Self::new(capacity_bytes, EvictionKind::Lru)
    }

    /// Byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of objects currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    /// The segment an object currently resides in (testing/diagnostics).
    pub fn segment_of(&self, id: ObjectId) -> Option<usize> {
        self.map.get(&id).map(|&i| self.nodes[i].segment)
    }

    /// Per-segment byte budget (capacity split evenly).
    fn budget(&self) -> u64 {
        self.capacity / self.heads.len() as u64
    }

    /// Records an access to `id`. Returns true if the object was present.
    pub fn touch(&mut self, id: ObjectId) -> bool {
        self.clock += 1;
        let Some(&idx) = self.map.get(&id) else { return false };
        self.nodes[idx].hits += 1;
        self.nodes[idx].last_touch = self.clock;
        match self.kind {
            EvictionKind::Lru => {
                self.unlink(idx);
                self.push_front(idx, 0);
            }
            EvictionKind::SegmentedLru { .. } => {
                let target = (self.nodes[idx].segment + 1).min(self.heads.len() - 1);
                self.unlink(idx);
                self.push_front(idx, target);
                self.rebalance();
            }
            EvictionKind::Fifo | EvictionKind::Lfu => {}
        }
        true
    }

    /// Inserts `id` with `size` bytes, evicting victims as needed. Returns
    /// the evicted `(id, size)` pairs. If `size > capacity`, nothing is
    /// inserted or evicted and the object is silently rejected (matching a
    /// real HOC, which cannot hold an object bigger than itself).
    ///
    /// Inserting an already-present object is treated as a touch.
    pub fn insert(&mut self, id: ObjectId, size: u64) -> Vec<(ObjectId, u64)> {
        if self.contains(id) {
            self.touch(id);
            return Vec::new();
        }
        if size > self.capacity {
            return Vec::new();
        }
        self.clock += 1;
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let victim = self.pick_victim().expect("store is non-empty while over capacity");
            evicted.push(self.remove_idx(victim));
        }
        let node = Node { id, size, prev: NIL, next: NIL, segment: 0, hits: 1, last_touch: self.clock };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.push_front(idx, 0);
        self.map.insert(id, idx);
        self.used += size;
        if matches!(self.kind, EvictionKind::SegmentedLru { .. }) {
            self.rebalance();
        }
        evicted
    }

    /// Removes `id` if present, returning its size.
    pub fn remove(&mut self, id: ObjectId) -> Option<u64> {
        let idx = self.map.get(&id).copied()?;
        let (_, size) = self.remove_idx(idx);
        Some(size)
    }

    /// The ID that would be evicted next, if any.
    pub fn peek_victim(&self) -> Option<ObjectId> {
        self.pick_victim().map(|i| self.nodes[i].id)
    }

    /// Iterator over resident object IDs (arbitrary order).
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.map.keys().copied()
    }

    /// Clears all contents (capacity retained).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.heads.iter_mut().for_each(|h| *h = NIL);
        self.tails.iter_mut().for_each(|t| *t = NIL);
        self.seg_used.iter_mut().for_each(|u| *u = 0);
        self.used = 0;
    }

    /// Demotes overflowing segment tails downward so every segment (except,
    /// transiently, segment 0) stays within its byte budget. Segment 0's
    /// overflow is resolved by `pick_victim`/`insert` eviction.
    fn rebalance(&mut self) {
        let budget = self.budget().max(1);
        for s in (1..self.heads.len()).rev() {
            while self.seg_used[s] > budget {
                let tail = self.tails[s];
                debug_assert_ne!(tail, NIL, "overfull segment has a tail");
                self.unlink(tail);
                self.push_front(tail, s - 1);
            }
        }
    }

    fn pick_victim(&self) -> Option<usize> {
        match self.kind {
            EvictionKind::Lru | EvictionKind::Fifo => (self.tails[0] != NIL).then_some(self.tails[0]),
            EvictionKind::SegmentedLru { .. } => {
                // Evict from the lowest non-empty segment's tail.
                self.tails.iter().find(|&&t| t != NIL).copied()
            }
            EvictionKind::Lfu => self
                .map
                .values()
                .copied()
                .min_by_key(|&i| (self.nodes[i].hits, self.nodes[i].last_touch)),
        }
    }

    fn remove_idx(&mut self, idx: usize) -> (ObjectId, u64) {
        self.unlink(idx);
        let id = self.nodes[idx].id;
        let size = self.nodes[idx].size;
        self.map.remove(&id);
        self.used -= size;
        self.free.push(idx);
        (id, size)
    }

    fn push_front(&mut self, idx: usize, segment: usize) {
        self.nodes[idx].segment = segment;
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.heads[segment];
        if self.heads[segment] != NIL {
            self.nodes[self.heads[segment]].prev = idx;
        }
        self.heads[segment] = idx;
        if self.tails[segment] == NIL {
            self.tails[segment] = idx;
        }
        self.seg_used[segment] += self.nodes[idx].size;
    }

    /// Serializes the store's observable state (policy, capacity, clock and
    /// per-segment recency order with per-object bookkeeping) into `enc`.
    ///
    /// Slab layout (node indices, free list) is deliberately *not* encoded:
    /// it carries no behavioural information, and omitting it makes the
    /// encoding canonical — identical observable state always encodes to
    /// identical bytes, which the warm-restore equivalence tests rely on.
    pub fn encode_state(&self, enc: &mut Enc) {
        match self.kind {
            EvictionKind::Lru => enc.u8(0),
            EvictionKind::Fifo => enc.u8(1),
            EvictionKind::Lfu => enc.u8(2),
            EvictionKind::SegmentedLru { segments } => {
                enc.u8(3);
                enc.u8(segments);
            }
        }
        enc.u64(self.capacity);
        enc.u64(self.clock);
        enc.usize(self.heads.len());
        for seg in 0..self.heads.len() {
            // Walk head → tail so decode can rebuild by pushing in reverse.
            let mut chain = Vec::new();
            let mut idx = self.heads[seg];
            while idx != NIL {
                chain.push(idx);
                idx = self.nodes[idx].next;
            }
            enc.seq(&chain, |e, &i| {
                let n = &self.nodes[i];
                e.u64(n.id);
                e.u64(n.size);
                e.u64(n.hits);
                e.u64(n.last_touch);
            });
        }
    }

    /// Rebuilds a store from bytes written by [`Store::encode_state`].
    ///
    /// Structural invariants (segment count matches the policy, no duplicate
    /// IDs, occupancy within capacity) are re-validated, so a corrupt body
    /// that passed the outer CRC by construction still cannot produce an
    /// inconsistent store.
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let kind = match dec.u8()? {
            0 => EvictionKind::Lru,
            1 => EvictionKind::Fifo,
            2 => EvictionKind::Lfu,
            3 => EvictionKind::SegmentedLru { segments: dec.u8()? },
            t => return Err(CkptError::Malformed(format!("eviction kind tag {t}"))),
        };
        let capacity = dec.u64()?;
        if capacity == 0 {
            return Err(CkptError::Malformed("zero store capacity".into()));
        }
        let clock = dec.u64()?;
        let segs = dec.usize()?;
        if segs != kind.num_segments() {
            return Err(CkptError::Malformed(format!(
                "segment count {segs} does not match policy {:?}",
                kind
            )));
        }
        let mut store = Store::new(capacity, kind);
        store.clock = clock;
        for seg in 0..segs {
            let chain = dec.seq(|d| Ok((d.u64()?, d.u64()?, d.u64()?, d.u64()?)))?;
            // Encoded head → tail; push_front in reverse restores the order.
            for &(id, size, hits, last_touch) in chain.iter().rev() {
                let node = Node { id, size, prev: NIL, next: NIL, segment: seg, hits, last_touch };
                store.nodes.push(node);
                let idx = store.nodes.len() - 1;
                store.push_front(idx, seg);
                if store.map.insert(id, idx).is_some() {
                    return Err(CkptError::Malformed(format!("duplicate object {id}")));
                }
                store.used += size;
            }
        }
        if store.used > store.capacity {
            return Err(CkptError::Malformed(format!(
                "occupancy {} exceeds capacity {}",
                store.used, store.capacity
            )));
        }
        Ok(store)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        let segment = self.nodes[idx].segment;
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.heads[segment] == idx {
            self.heads[segment] = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tails[segment] == idx {
            self.tails[segment] = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
        self.seg_used[segment] -= self.nodes[idx].size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = Store::lru(30);
        s.insert(1, 10);
        s.insert(2, 10);
        s.insert(3, 10);
        s.touch(1); // order now (MRU→LRU): 1,3,2
        let ev = s.insert(4, 10);
        assert_eq!(ev, vec![(2, 10)]);
        assert!(s.contains(1) && s.contains(3) && s.contains(4));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut s = Store::new(30, EvictionKind::Fifo);
        s.insert(1, 10);
        s.insert(2, 10);
        s.insert(3, 10);
        s.touch(1);
        let ev = s.insert(4, 10);
        assert_eq!(ev, vec![(1, 10)], "FIFO must evict oldest insert despite touch");
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut s = Store::new(30, EvictionKind::Lfu);
        s.insert(1, 10);
        s.insert(2, 10);
        s.insert(3, 10);
        s.touch(1);
        s.touch(1);
        s.touch(3);
        let ev = s.insert(4, 10);
        assert_eq!(ev, vec![(2, 10)]);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut s = Store::lru(100);
        for i in 0..1000u64 {
            s.insert(i, 1 + (i % 37));
            assert!(s.used_bytes() <= 100);
        }
    }

    #[test]
    fn oversized_object_rejected_without_eviction() {
        let mut s = Store::lru(50);
        s.insert(1, 20);
        let ev = s.insert(2, 60);
        assert!(ev.is_empty());
        assert!(!s.contains(2));
        assert!(s.contains(1), "rejection must not evict residents");
    }

    #[test]
    fn multi_eviction_for_large_insert() {
        let mut s = Store::lru(30);
        s.insert(1, 10);
        s.insert(2, 10);
        s.insert(3, 10);
        let ev = s.insert(4, 25);
        assert_eq!(ev.len(), 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.used_bytes(), 25);
    }

    #[test]
    fn reinsert_is_touch() {
        let mut s = Store::lru(30);
        s.insert(1, 10);
        s.insert(2, 10);
        s.insert(3, 10);
        s.insert(1, 10); // touch, not duplicate
        assert_eq!(s.used_bytes(), 30);
        let ev = s.insert(4, 10);
        assert_eq!(ev, vec![(2, 10)]);
    }

    #[test]
    fn remove_frees_space() {
        let mut s = Store::lru(30);
        s.insert(1, 10);
        assert_eq!(s.remove(1), Some(10));
        assert_eq!(s.remove(1), None);
        assert_eq!(s.used_bytes(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut s = Store::lru(30);
        s.insert(1, 10);
        s.insert(2, 10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
        assert_eq!(s.peek_victim(), None);
        s.insert(3, 10);
        assert!(s.contains(3));
    }

    #[test]
    fn peek_victim_matches_next_eviction() {
        let mut s = Store::lru(20);
        s.insert(1, 10);
        s.insert(2, 10);
        let victim = s.peek_victim().unwrap();
        let ev = s.insert(3, 10);
        assert_eq!(ev[0].0, victim);
    }

    #[test]
    fn slab_reuses_freed_nodes() {
        let mut s = Store::lru(10);
        for i in 0..10_000u64 {
            s.insert(i, 10); // each insert evicts the previous one
        }
        assert!(s.nodes.len() <= 2, "slab grew: {}", s.nodes.len());
    }

    fn roundtrip(s: &Store) -> Store {
        let mut enc = Enc::new();
        s.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let restored = Store::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        // Canonical encoding: re-encoding the restored store is bit-identical.
        let mut re = Enc::new();
        restored.encode_state(&mut re);
        assert_eq!(re.into_bytes(), bytes, "encoding is not canonical");
        restored
    }

    #[test]
    fn codec_roundtrip_preserves_behaviour() {
        for kind in [
            EvictionKind::Lru,
            EvictionKind::Fifo,
            EvictionKind::Lfu,
            EvictionKind::SegmentedLru { segments: 4 },
        ] {
            let mut s = Store::new(100, kind);
            for i in 0..40u64 {
                s.insert(i, 1 + i % 23);
                s.touch(i / 2);
            }
            let mut r = roundtrip(&s);
            assert_eq!(r.used_bytes(), s.used_bytes());
            assert_eq!(r.len(), s.len());
            // Same future behaviour: identical eviction sequences.
            for i in 100..140u64 {
                assert_eq!(s.insert(i, 7), r.insert(i, 7), "kind {kind:?} diverged at {i}");
                assert_eq!(s.touch(i % 50), r.touch(i % 50));
            }
        }
    }

    #[test]
    fn codec_rejects_corrupt_bodies() {
        let mut s = Store::lru(100);
        s.insert(1, 10);
        s.insert(2, 20);
        let mut enc = Enc::new();
        s.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        // Truncations never panic.
        for keep in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..keep]);
            assert!(
                Store::decode_state(&mut dec).and_then(|_| dec.finish()).is_err(),
                "truncation to {keep} bytes accepted"
            );
        }
        // Bad kind tag.
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(Store::decode_state(&mut Dec::new(&bad)).is_err());
    }

    // --- segmented LRU ---

    fn s4(capacity: u64) -> Store {
        Store::new(capacity, EvictionKind::SegmentedLru { segments: 4 })
    }

    #[test]
    fn segmented_inserts_land_in_segment_zero() {
        let mut s = s4(400);
        s.insert(1, 10);
        assert_eq!(s.segment_of(1), Some(0));
    }

    #[test]
    fn segmented_hits_promote_up_to_top() {
        let mut s = s4(400);
        s.insert(1, 10);
        s.touch(1);
        assert_eq!(s.segment_of(1), Some(1));
        s.touch(1);
        s.touch(1);
        assert_eq!(s.segment_of(1), Some(3));
        s.touch(1); // already at the top
        assert_eq!(s.segment_of(1), Some(3));
    }

    #[test]
    fn segmented_is_scan_resistant() {
        // Promote a working set to the upper segments, then scan many
        // one-hit objects through: the working set must survive.
        let mut s = s4(400);
        for id in 0..4u64 {
            s.insert(id, 50);
            s.touch(id);
            s.touch(id); // segment 2
        }
        for scan in 100..200u64 {
            s.insert(scan, 50);
        }
        for id in 0..4u64 {
            assert!(s.contains(id), "working-set object {id} evicted by scan");
        }
    }

    #[test]
    fn plain_lru_is_not_scan_resistant() {
        // The contrast case for the test above.
        let mut s = Store::lru(400);
        for id in 0..4u64 {
            s.insert(id, 50);
            s.touch(id);
            s.touch(id);
        }
        for scan in 100..200u64 {
            s.insert(scan, 50);
        }
        assert!((0..4u64).all(|id| !s.contains(id)), "LRU should have churned everything");
    }

    #[test]
    fn segmented_demotion_cascades_to_eviction() {
        let mut s = s4(100); // budget 25 per segment
                             // Fill with promoted objects.
        for id in 0..4u64 {
            s.insert(id, 25);
            s.touch(id);
            s.touch(id);
            s.touch(id);
        }
        assert!(s.used_bytes() <= 100);
        // Keep inserting; capacity must hold and evictions must occur.
        let mut evicted = 0;
        for id in 10..20u64 {
            evicted += s.insert(id, 25).len();
            assert!(s.used_bytes() <= 100);
        }
        assert!(evicted > 0);
    }

    #[test]
    fn single_segment_segmented_behaves_like_lru() {
        let mut a = Store::new(30, EvictionKind::SegmentedLru { segments: 1 });
        let mut b = Store::lru(30);
        let ops: Vec<(u64, bool)> =
            vec![(1, false), (2, false), (1, true), (3, false), (4, false), (2, true)];
        for (id, is_touch) in ops {
            if is_touch {
                assert_eq!(a.touch(id), b.touch(id));
            } else {
                a.insert(id, 10);
                b.insert(id, 10);
            }
            let mut ia: Vec<u64> = a.ids().collect();
            let mut ib: Vec<u64> = b.ids().collect();
            ia.sort_unstable();
            ib.sort_unstable();
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn segmented_capacity_with_oversized_budget_objects() {
        // Object bigger than one segment's budget but under capacity must
        // still be storable without breaking the capacity invariant.
        let mut s = s4(100); // budget 25
        s.insert(1, 60);
        assert!(s.contains(1));
        assert!(s.used_bytes() <= 100);
        s.insert(2, 30);
        assert!(s.used_bytes() <= 100);
        for id in 3..10u64 {
            s.insert(id, 20);
            assert!(s.used_bytes() <= 100, "capacity exceeded at id {id}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// A naive reference LRU over a deque.
    struct RefLru {
        cap: u64,
        q: VecDeque<(u64, u64)>, // front = MRU
    }
    impl RefLru {
        fn touch(&mut self, id: u64) -> bool {
            if let Some(pos) = self.q.iter().position(|&(i, _)| i == id) {
                let e = self.q.remove(pos).unwrap();
                self.q.push_front(e);
                true
            } else {
                false
            }
        }
        fn insert(&mut self, id: u64, size: u64) {
            if self.touch(id) {
                return;
            }
            if size > self.cap {
                return;
            }
            let mut used: u64 = self.q.iter().map(|&(_, s)| s).sum();
            while used + size > self.cap {
                let (_, s) = self.q.pop_back().unwrap();
                used -= s;
            }
            self.q.push_front((id, size));
        }
    }

    proptest! {
        /// The slab LRU must match a straightforward reference model under
        /// arbitrary interleavings of inserts and touches.
        #[test]
        fn lru_matches_reference(ops in proptest::collection::vec((0u64..20, 1u64..15, proptest::bool::ANY), 1..200)) {
            let mut s = Store::lru(40);
            let mut r = RefLru { cap: 40, q: VecDeque::new() };
            for (id, size, is_touch) in ops {
                if is_touch {
                    prop_assert_eq!(s.touch(id), r.touch(id));
                } else {
                    s.insert(id, size);
                    r.insert(id, size);
                }
                let mut a: Vec<u64> = s.ids().collect();
                let mut b: Vec<u64> = r.q.iter().map(|&(i, _)| i).collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b);
                prop_assert!(s.used_bytes() <= 40);
            }
        }

        /// Cache-server-shaped request sequences (touch on hit, insert on
        /// miss): resident bytes never exceed capacity and every eviction the
        /// store reports matches, in order, the victim a reference model of
        /// the policy picks (LRU: least recent; FIFO: oldest insert; LFU:
        /// fewest hits, least-recent tie-break).
        #[test]
        fn request_sequence_eviction_order_matches_policy(
            kind_sel in 0usize..3,
            reqs in proptest::collection::vec((0u64..40, 1u64..30), 1..400),
        ) {
            const CAP: u64 = 100;
            let kind = [EvictionKind::Lru, EvictionKind::Fifo, EvictionKind::Lfu][kind_sel];
            let mut s = Store::new(CAP, kind);
            // Reference state: `order` is most-recent-first for LRU and
            // most-recently-inserted-first for FIFO; `stats` tracks
            // (hits, last_touch) for LFU with the same clock Store uses.
            let mut sizes: std::collections::HashMap<u64, u64> = Default::default();
            let mut order: Vec<u64> = Vec::new();
            let mut stats: std::collections::HashMap<u64, (u64, u64)> = Default::default();
            let mut used = 0u64;
            let mut clock = 0u64;
            for (id, size) in reqs {
                let size = *sizes.entry(id).or_insert(size);
                if s.touch(id) {
                    clock += 1;
                    prop_assert!(order.contains(&id), "store hit an absent object");
                    if kind == EvictionKind::Lru {
                        let pos = order.iter().position(|&i| i == id).unwrap();
                        order.remove(pos);
                        order.insert(0, id);
                    }
                    let e = stats.get_mut(&id).unwrap();
                    e.0 += 1;
                    e.1 = clock;
                } else {
                    clock += 1; // the miss-side touch() also ticks the clock
                    clock += 1; // insert() ticks again before evicting
                    let mut expected: Vec<(u64, u64)> = Vec::new();
                    while used + size > CAP {
                        let victim = match kind {
                            EvictionKind::Lfu => *stats
                                .keys()
                                .min_by_key(|i| stats[i])
                                .expect("non-empty while over capacity"),
                            _ => *order.last().expect("non-empty while over capacity"),
                        };
                        order.retain(|&i| i != victim);
                        stats.remove(&victim);
                        used -= sizes[&victim];
                        expected.push((victim, sizes[&victim]));
                    }
                    prop_assert_eq!(s.insert(id, size), expected, "eviction order diverged");
                    order.insert(0, id);
                    stats.insert(id, (1, clock));
                    used += size;
                }
                prop_assert!(s.used_bytes() <= CAP);
                prop_assert_eq!(s.used_bytes(), used);
            }
        }

        /// Byte accounting stays consistent with the resident set.
        #[test]
        fn used_bytes_consistent(ops in proptest::collection::vec((0u64..50, 1u64..30), 1..300)) {
            let mut s = Store::lru(100);
            let mut sizes = std::collections::HashMap::new();
            for (id, size) in ops {
                // Re-inserting a resident object is a touch: the original
                // size is retained, so only record the size that "won".
                let was_present = s.contains(id);
                s.insert(id, size);
                if !was_present {
                    sizes.insert(id, size);
                }
                let expect: u64 = s.ids().map(|i| sizes[&i]).sum();
                prop_assert_eq!(s.used_bytes(), expect);
            }
        }

        /// Segmented LRU never exceeds capacity and never loses objects it
        /// did not report as evicted.
        #[test]
        fn segmented_invariants(ops in proptest::collection::vec((0u64..30, 1u64..25, proptest::bool::ANY), 1..300)) {
            let mut s = Store::new(80, EvictionKind::SegmentedLru { segments: 4 });
            let mut resident = std::collections::HashSet::new();
            for (id, size, is_touch) in ops {
                if is_touch {
                    prop_assert_eq!(s.touch(id), resident.contains(&id));
                } else if !resident.contains(&id) && size <= 80 {
                    let evicted = s.insert(id, size);
                    resident.insert(id);
                    for (v, _) in evicted {
                        resident.remove(&v);
                    }
                } else {
                    s.insert(id, size);
                }
                prop_assert!(s.used_bytes() <= 80);
                let mut a: Vec<u64> = s.ids().collect();
                let mut b: Vec<u64> = resident.iter().copied().collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b);
            }
        }
    }
}
