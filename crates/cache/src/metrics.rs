//! Cache performance accounting.
//!
//! Tracks every counter needed by the paper's metrics (§2.2 "CDN Caching
//! Objectives"):
//!
//! * **OHR** — object hit rate, overall and per-level;
//! * **BMR** — byte miss ratio (bytes served on misses / total bytes);
//! * **disk writes** — bytes and operations written to the disk cache, the
//!   resource-related metric (SSD endurance / CAPEX) of §2.2 and §6.3.
//!
//! Counters are plain sums, so a *window* of activity is `later.diff(earlier)`
//! of two snapshots — this is how online algorithms (Darwin's bandit rounds,
//! HillClimbing's epochs, Percentile's windows) extract per-round rewards.

use darwin_ckpt::{CkptError, Dec, Enc};
use serde::{Deserialize, Serialize};

/// Monotone cache counters. All byte quantities are in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheMetrics {
    /// Requests processed.
    pub requests: u64,
    /// Requests served from the HOC.
    pub hoc_hits: u64,
    /// Requests served from the DC (HOC miss, DC hit).
    pub dc_hits: u64,
    /// Requests served from the origin (full miss).
    pub origin_fetches: u64,
    /// Total bytes requested.
    pub bytes_total: u64,
    /// Bytes served from the HOC.
    pub bytes_hoc_hit: u64,
    /// Bytes served from the DC.
    pub bytes_dc_hit: u64,
    /// Bytes served from the origin.
    pub bytes_origin: u64,
    /// Bytes written into the DC (admissions).
    pub dc_write_bytes: u64,
    /// DC write operations (object admissions).
    pub dc_writes: u64,
    /// Bytes written into the HOC (promotions).
    pub hoc_write_bytes: u64,
    /// HOC promotions.
    pub hoc_writes: u64,
    /// Objects evicted from the HOC.
    pub hoc_evictions: u64,
    /// Objects evicted from the DC.
    pub dc_evictions: u64,
}

impl CacheMetrics {
    /// HOC object hit rate: HOC hits / requests. The paper's headline metric
    /// ("we present Darwin in the context of admission policies that maximize
    /// the HOC hit rate").
    pub fn hoc_ohr(&self) -> f64 {
        ratio(self.hoc_hits, self.requests)
    }

    /// Overall object hit rate: (HOC hits + DC hits) / requests.
    pub fn total_ohr(&self) -> f64 {
        ratio(self.hoc_hits + self.dc_hits, self.requests)
    }

    /// HOC byte miss ratio: bytes *not* served from the HOC / total bytes.
    /// §6.3 minimizes this "to reduce the bytes written to the DC or to the
    /// origin server".
    pub fn hoc_bmr(&self) -> f64 {
        ratio(self.bytes_total - self.bytes_hoc_hit, self.bytes_total)
    }

    /// Server byte miss ratio: origin bytes / total bytes (midgress measure).
    pub fn total_bmr(&self) -> f64 {
        ratio(self.bytes_origin, self.bytes_total)
    }

    /// Disk (DC) write bytes per request.
    pub fn disk_write_bytes_per_request(&self) -> f64 {
        ratio(self.dc_write_bytes, self.requests)
    }

    /// HOC-missed bytes per request — the paper's §6.3 approximation of disk
    /// writes ("we approximate the disk write bytes to be the bytes missed in
    /// HOC").
    pub fn hoc_miss_bytes_per_request(&self) -> f64 {
        ratio(self.bytes_total - self.bytes_hoc_hit, self.requests)
    }

    /// Counter-wise difference `self − earlier`; the activity of the window
    /// between the two snapshots.
    ///
    /// Subtraction saturates at zero: if `earlier` is not actually an earlier
    /// snapshot of the same counter stream (a reset or wrapped counter), the
    /// affected counters clamp to zero instead of panicking in debug builds.
    pub fn diff(&self, earlier: &CacheMetrics) -> CacheMetrics {
        CacheMetrics {
            requests: self.requests.saturating_sub(earlier.requests),
            hoc_hits: self.hoc_hits.saturating_sub(earlier.hoc_hits),
            dc_hits: self.dc_hits.saturating_sub(earlier.dc_hits),
            origin_fetches: self.origin_fetches.saturating_sub(earlier.origin_fetches),
            bytes_total: self.bytes_total.saturating_sub(earlier.bytes_total),
            bytes_hoc_hit: self.bytes_hoc_hit.saturating_sub(earlier.bytes_hoc_hit),
            bytes_dc_hit: self.bytes_dc_hit.saturating_sub(earlier.bytes_dc_hit),
            bytes_origin: self.bytes_origin.saturating_sub(earlier.bytes_origin),
            dc_write_bytes: self.dc_write_bytes.saturating_sub(earlier.dc_write_bytes),
            dc_writes: self.dc_writes.saturating_sub(earlier.dc_writes),
            hoc_write_bytes: self.hoc_write_bytes.saturating_sub(earlier.hoc_write_bytes),
            hoc_writes: self.hoc_writes.saturating_sub(earlier.hoc_writes),
            hoc_evictions: self.hoc_evictions.saturating_sub(earlier.hoc_evictions),
            dc_evictions: self.dc_evictions.saturating_sub(earlier.dc_evictions),
        }
    }

    /// Counter-wise sum `self + other`: the combined activity of two disjoint
    /// counter streams (e.g. the shards of a fleet). Rates of the merged
    /// value are fleet-wide rates because all counters are plain sums.
    pub fn merge(&self, other: &CacheMetrics) -> CacheMetrics {
        CacheMetrics {
            requests: self.requests + other.requests,
            hoc_hits: self.hoc_hits + other.hoc_hits,
            dc_hits: self.dc_hits + other.dc_hits,
            origin_fetches: self.origin_fetches + other.origin_fetches,
            bytes_total: self.bytes_total + other.bytes_total,
            bytes_hoc_hit: self.bytes_hoc_hit + other.bytes_hoc_hit,
            bytes_dc_hit: self.bytes_dc_hit + other.bytes_dc_hit,
            bytes_origin: self.bytes_origin + other.bytes_origin,
            dc_write_bytes: self.dc_write_bytes + other.dc_write_bytes,
            dc_writes: self.dc_writes + other.dc_writes,
            hoc_write_bytes: self.hoc_write_bytes + other.hoc_write_bytes,
            hoc_writes: self.hoc_writes + other.hoc_writes,
            hoc_evictions: self.hoc_evictions + other.hoc_evictions,
            dc_evictions: self.dc_evictions + other.dc_evictions,
        }
    }

    /// Merges an iterator of per-shard metrics into fleet-wide totals.
    pub fn merge_all<'a, I: IntoIterator<Item = &'a CacheMetrics>>(parts: I) -> CacheMetrics {
        parts.into_iter().fold(CacheMetrics::default(), |acc, m| acc.merge(m))
    }

    /// Serializes every counter, in declaration order.
    pub fn encode_state(&self, enc: &mut Enc) {
        for v in [
            self.requests,
            self.hoc_hits,
            self.dc_hits,
            self.origin_fetches,
            self.bytes_total,
            self.bytes_hoc_hit,
            self.bytes_dc_hit,
            self.bytes_origin,
            self.dc_write_bytes,
            self.dc_writes,
            self.hoc_write_bytes,
            self.hoc_writes,
            self.hoc_evictions,
            self.dc_evictions,
        ] {
            enc.u64(v);
        }
    }

    /// Reads counters written by [`CacheMetrics::encode_state`].
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok(CacheMetrics {
            requests: dec.u64()?,
            hoc_hits: dec.u64()?,
            dc_hits: dec.u64()?,
            origin_fetches: dec.u64()?,
            bytes_total: dec.u64()?,
            bytes_hoc_hit: dec.u64()?,
            bytes_dc_hit: dec.u64()?,
            bytes_origin: dec.u64()?,
            dc_write_bytes: dec.u64()?,
            dc_writes: dec.u64()?,
            hoc_write_bytes: dec.u64()?,
            hoc_writes: dec.u64()?,
            hoc_evictions: dec.u64()?,
            dc_evictions: dec.u64()?,
        })
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheMetrics {
        CacheMetrics {
            requests: 100,
            hoc_hits: 40,
            dc_hits: 30,
            origin_fetches: 30,
            bytes_total: 1000,
            bytes_hoc_hit: 300,
            bytes_dc_hit: 350,
            bytes_origin: 350,
            dc_write_bytes: 500,
            dc_writes: 20,
            hoc_write_bytes: 200,
            hoc_writes: 10,
            hoc_evictions: 5,
            dc_evictions: 2,
        }
    }

    #[test]
    fn rates_computed_correctly() {
        let m = sample();
        assert!((m.hoc_ohr() - 0.4).abs() < 1e-12);
        assert!((m.total_ohr() - 0.7).abs() < 1e-12);
        assert!((m.hoc_bmr() - 0.7).abs() < 1e-12);
        assert!((m.total_bmr() - 0.35).abs() < 1e-12);
        assert!((m.disk_write_bytes_per_request() - 5.0).abs() < 1e-12);
        assert!((m.hoc_miss_bytes_per_request() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_have_zero_rates() {
        let m = CacheMetrics::default();
        assert_eq!(m.hoc_ohr(), 0.0);
        assert_eq!(m.hoc_bmr(), 0.0);
        assert_eq!(m.total_bmr(), 0.0);
    }

    #[test]
    fn diff_isolates_window() {
        let early = CacheMetrics { requests: 10, hoc_hits: 5, bytes_total: 50, ..Default::default() };
        let late = CacheMetrics { requests: 30, hoc_hits: 20, bytes_total: 90, ..Default::default() };
        let w = late.diff(&early);
        assert_eq!(w.requests, 20);
        assert_eq!(w.hoc_hits, 15);
        assert_eq!(w.bytes_total, 40);
        assert!((w.hoc_ohr() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn diff_of_self_is_zero() {
        let m = sample();
        assert_eq!(m.diff(&m), CacheMetrics::default());
    }

    #[test]
    fn diff_saturates_on_out_of_order_snapshots() {
        // Regression: an out-of-order (reset / wrapped) earlier snapshot used
        // to panic in debug builds; it must clamp to zero instead.
        let early = CacheMetrics { requests: 10, hoc_hits: 5, bytes_total: 50, ..Default::default() };
        let late = CacheMetrics { requests: 30, hoc_hits: 2, bytes_total: 90, ..Default::default() };
        let w = late.diff(&early);
        assert_eq!(w.requests, 20);
        assert_eq!(w.hoc_hits, 0, "wrapped counter saturates to zero");
        assert_eq!(w.bytes_total, 40);
        // Saturation is per-counter: in the inverted diff the genuinely
        // out-of-order counters clamp to zero while a counter that is still
        // ordered (early.hoc_hits=5 > late.hoc_hits=2) diffs normally.
        let inv = early.diff(&late);
        assert_eq!(inv.requests, 0);
        assert_eq!(inv.hoc_hits, 3);
        assert_eq!(inv.bytes_total, 0);
        // Diffing a zero snapshot against anything is all zeros.
        assert_eq!(CacheMetrics::default().diff(&sample()), CacheMetrics::default());
    }

    #[test]
    fn merge_sums_counters_and_rates_are_fleet_wide() {
        let a = sample();
        let b = CacheMetrics { requests: 50, hoc_hits: 10, bytes_total: 500, ..Default::default() };
        let m = a.merge(&b);
        assert_eq!(m.requests, 150);
        assert_eq!(m.hoc_hits, 50);
        assert_eq!(m.bytes_total, 1500);
        assert!((m.hoc_ohr() - 50.0 / 150.0).abs() < 1e-12);
        // merge_all over shards equals pairwise merging.
        let parts = [a, b, sample()];
        assert_eq!(CacheMetrics::merge_all(&parts), a.merge(&b).merge(&sample()));
        // Identity element.
        assert_eq!(a.merge(&CacheMetrics::default()), a);
    }
}
