//! Track and Stop with Side Information (Algorithm 1).
//!
//! The driver loop alternates [`TrackAndStopSideInfo::next_arm`] (line 5:
//! deploy the most under-deployed arm w.r.t. the current optimal proportions
//! `α*(μ̂_t, Σ)`) and [`TrackAndStopSideInfo::observe`] (lines 6–9: ingest the
//! reward vector, update the weighted estimates of Eq 1, recompute the
//! information level `Z_t = Φ(μ̂_t, T(t))` and test it against the stopping
//! threshold `β_t(δ, Σ)`).
//!
//! Two thresholds are provided:
//!
//! * [`BetaRule::GarivierKaufmann`] — the standard practical GLRT threshold
//!   `β = ln((1 + ln t)·(K−1)/δ)`; this is what the end-to-end system runs.
//! * [`BetaRule::Theorem1`] — the paper's Theorem 1 form
//!   `β_t = Kt/(2κ) + K·M²/(2σ²_min·κ·√C)·√(t·ln(2/δ))`, with its
//!   conservative constants; used by the theory experiments.
//!
//! In addition, the *stability criterion* used in the paper's evaluation
//! ("an expert is consistently selected by the bandit for 5 consecutive
//! rounds", §6.2 / Fig 5d) can be enabled so identification terminates in
//! practical time even when the threshold rule is conservative.

use crate::env::SideInfo;
use crate::estimator::WeightedEstimator;
use crate::oracle;
use darwin_ckpt::{CkptError, Dec, Enc};
use serde::{Deserialize, Serialize};

/// Stopping-threshold rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BetaRule {
    /// `β(t, δ) = ln((1 + ln t) · (K − 1) / δ)` — standard practical choice.
    GarivierKaufmann,
    /// Theorem 1's threshold with constant `C` (the paper leaves `C`
    /// unspecified; larger `C` is more aggressive).
    Theorem1 {
        /// The constant C in Theorem 1.
        c: f64,
    },
}

/// Why identification ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Information level crossed the threshold (`Z_t ≥ β_t`).
    Threshold,
    /// The same arm was empirically best for the configured number of
    /// consecutive rounds (the paper's §6.2 practical criterion).
    Stability,
    /// The round budget ran out; the recommendation is best-effort.
    Budget,
}

/// Configuration for [`TrackAndStopSideInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TasConfig {
    /// Threshold rule for the `Z_t ≥ β_t` stopping test.
    pub beta: BetaRule,
    /// If `Some(r)`, also stop when the empirical best arm is unchanged for
    /// `r` consecutive rounds (after every arm was initialized).
    pub stability_rounds: Option<usize>,
    /// Hard budget on rounds (0 = unlimited).
    pub max_rounds: usize,
    /// Iterations for the α* optimizer.
    pub alpha_iters: usize,
    /// Reward bound `M` of Theorem 1 (hit rates ⇒ 1).
    pub reward_bound_m: f64,
    /// Enable classical forced exploration (play any arm with
    /// `T_i < √t − K/2`). Unnecessary with genuine side information — every
    /// round updates every arm — but required by the classical baseline.
    pub forced_exploration: bool,
}

impl Default for TasConfig {
    fn default() -> Self {
        Self {
            beta: BetaRule::GarivierKaufmann,
            stability_rounds: Some(5),
            max_rounds: 100_000,
            alpha_iters: 150,
            reward_bound_m: 1.0,
            forced_exploration: false,
        }
    }
}

/// Algorithm 1: Track and Stop with Side Information.
#[derive(Debug, Clone)]
pub struct TrackAndStopSideInfo {
    sigma: SideInfo,
    delta: f64,
    cfg: TasConfig,
    est: WeightedEstimator,
    counts: Vec<f64>,
    t: usize,
    finished: bool,
    stop_reason: Option<StopReason>,
    last_best: Option<usize>,
    consec_best: usize,
    pending_arm: Option<usize>,
}

impl TrackAndStopSideInfo {
    /// New identification run with failure probability `delta`.
    pub fn new(sigma: SideInfo, delta: f64, cfg: TasConfig) -> Self {
        assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta must be in (0,1)");
        let k = sigma.k();
        let est = WeightedEstimator::new(sigma.clone());
        let mut s = Self {
            sigma,
            delta,
            cfg,
            est,
            counts: vec![0.0; k],
            t: 0,
            finished: false,
            stop_reason: None,
            last_best: None,
            consec_best: 0,
            pending_arm: None,
        };
        if k == 1 {
            // Nothing to identify.
            s.finished = true;
            s.stop_reason = Some(StopReason::Threshold);
        }
        s
    }

    /// Number of arms.
    pub fn k(&self) -> usize {
        self.counts.len()
    }

    /// Rounds completed.
    pub fn rounds(&self) -> usize {
        self.t
    }

    /// Whether identification has terminated.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Why it terminated (None while running).
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop_reason
    }

    /// Current mean estimates μ̂(t).
    pub fn means(&self) -> Vec<f64> {
        self.est.means()
    }

    /// Deployment counts T(t).
    pub fn deployment_counts(&self) -> &[f64] {
        &self.counts
    }

    /// The recommendation rule ψ: the empirically best arm.
    pub fn recommend(&self) -> usize {
        self.est.best_arm()
    }

    /// Current information level `Z_t = Φ(μ̂_t, T(t))`.
    pub fn information_level(&self) -> f64 {
        if self.t == 0 {
            return 0.0;
        }
        oracle::phi(&self.est.means(), &self.counts, &self.sigma)
    }

    /// Current stopping threshold `β_t(δ, Σ)`.
    pub fn threshold(&self) -> f64 {
        let t = self.t.max(1) as f64;
        let k = self.k() as f64;
        match self.cfg.beta {
            BetaRule::GarivierKaufmann => (((1.0 + t.ln()) * (k - 1.0).max(1.0)) / self.delta).ln(),
            BetaRule::Theorem1 { c } => {
                let kappa = self.sigma.kappa();
                let s2min = self.sigma.sigma2_min();
                let m = self.cfg.reward_bound_m;
                k * t / (2.0 * kappa)
                    + (k * m * m) / (2.0 * s2min * kappa * c.sqrt())
                        * (t * (2.0 / self.delta).ln()).sqrt()
            }
        }
    }

    /// Line 5: the arm to deploy next. Initialization plays each arm once.
    ///
    /// Idempotent until the matching [`Self::observe`] call.
    pub fn next_arm(&mut self) -> usize {
        assert!(!self.finished, "identification already finished");
        if let Some(a) = self.pending_arm {
            return a;
        }
        let k = self.k();
        let arm = if self.t < k {
            self.t // play each expert once (line 2)
        } else if self.cfg.forced_exploration && self.under_explored().is_some() {
            self.under_explored().unwrap()
        } else {
            // D-tracking: most under-deployed w.r.t. α*(μ̂_t, Σ).
            let alpha = oracle::optimal_alpha(&self.est.means(), &self.sigma, self.cfg.alpha_iters);
            let t = self.t as f64;
            (0..k)
                .max_by(|&a, &b| {
                    let da = t * alpha[a] - self.counts[a];
                    let db = t * alpha[b] - self.counts[b];
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap()
        };
        self.pending_arm = Some(arm);
        arm
    }

    fn under_explored(&self) -> Option<usize> {
        let floor = (self.t as f64).sqrt() - self.k() as f64 / 2.0;
        (0..self.k())
            .filter(|&i| self.counts[i] < floor)
            .min_by(|&a, &b| self.counts[a].partial_cmp(&self.counts[b]).unwrap())
    }

    /// Lines 6–9: ingest the reward vector observed while `arm` was deployed
    /// and run the stopping test. `arm` must be the value returned by the
    /// preceding [`Self::next_arm`].
    pub fn observe(&mut self, arm: usize, y: &[f64]) {
        assert!(!self.finished, "identification already finished");
        if let Some(p) = self.pending_arm {
            assert_eq!(p, arm, "observe() arm {arm} differs from next_arm() {p}");
        }
        self.pending_arm = None;
        self.est.observe(arm, y);
        self.counts[arm] += 1.0;
        self.t += 1;

        // Stability bookkeeping (only meaningful once every arm has played).
        let best = self.est.best_arm();
        if self.t >= self.k() {
            if self.last_best == Some(best) {
                self.consec_best += 1;
            } else {
                self.consec_best = 1;
            }
            self.last_best = Some(best);
        }

        // Stopping tests.
        if self.t >= self.k() {
            if self.information_level() >= self.threshold() {
                self.finished = true;
                self.stop_reason = Some(StopReason::Threshold);
                return;
            }
            if let Some(r) = self.cfg.stability_rounds {
                if self.consec_best >= r {
                    self.finished = true;
                    self.stop_reason = Some(StopReason::Stability);
                    return;
                }
            }
        }
        if self.cfg.max_rounds > 0 && self.t >= self.cfg.max_rounds {
            self.finished = true;
            self.stop_reason = Some(StopReason::Budget);
        }
    }

    /// Serializes the full identification state: side info, δ, config, the
    /// weighted estimator, deployment counts and every piece of stopping
    /// bookkeeping — enough to resume mid-identification bit-exactly.
    pub fn encode_state(&self, enc: &mut Enc) {
        self.sigma.encode_state(enc);
        enc.f64(self.delta);
        match self.cfg.beta {
            BetaRule::GarivierKaufmann => enc.u8(0),
            BetaRule::Theorem1 { c } => {
                enc.u8(1);
                enc.f64(c);
            }
        }
        enc.opt(self.cfg.stability_rounds.as_ref(), |e, &r| e.usize(r));
        enc.usize(self.cfg.max_rounds);
        enc.usize(self.cfg.alpha_iters);
        enc.f64(self.cfg.reward_bound_m);
        enc.bool(self.cfg.forced_exploration);
        self.est.encode_state(enc);
        enc.seq(&self.counts, |e, &v| e.f64(v));
        enc.usize(self.t);
        enc.bool(self.finished);
        enc.opt(self.stop_reason.as_ref(), |e, r| {
            e.u8(match r {
                StopReason::Threshold => 0,
                StopReason::Stability => 1,
                StopReason::Budget => 2,
            })
        });
        enc.opt(self.last_best.as_ref(), |e, &b| e.usize(b));
        enc.usize(self.consec_best);
        enc.opt(self.pending_arm.as_ref(), |e, &a| e.usize(a));
    }

    /// Rebuilds an identification run from bytes written by
    /// [`TrackAndStopSideInfo::encode_state`].
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let sigma = SideInfo::decode_state(dec)?;
        let delta = dec.f64()?;
        if delta.is_nan() || delta <= 0.0 || delta >= 1.0 {
            return Err(CkptError::Malformed(format!("delta {delta} outside (0,1)")));
        }
        let beta = match dec.u8()? {
            0 => BetaRule::GarivierKaufmann,
            1 => BetaRule::Theorem1 { c: dec.f64()? },
            t => return Err(CkptError::Malformed(format!("beta rule tag {t}"))),
        };
        let cfg = TasConfig {
            beta,
            stability_rounds: dec.opt(|d| d.usize())?,
            max_rounds: dec.usize()?,
            alpha_iters: dec.usize()?,
            reward_bound_m: dec.f64()?,
            forced_exploration: dec.bool()?,
        };
        let est = WeightedEstimator::decode_state(dec)?;
        let counts = dec.seq(|d| d.f64())?;
        let k = sigma.k();
        if est.k() != k || counts.len() != k {
            return Err(CkptError::Malformed("arm count mismatch".into()));
        }
        let t = dec.usize()?;
        let finished = dec.bool()?;
        let stop_reason = dec.opt(|d| match d.u8()? {
            0 => Ok(StopReason::Threshold),
            1 => Ok(StopReason::Stability),
            2 => Ok(StopReason::Budget),
            t => Err(CkptError::Malformed(format!("stop reason tag {t}"))),
        })?;
        let last_best = dec.opt(|d| d.usize())?;
        let consec_best = dec.usize()?;
        let pending_arm = dec.opt(|d| d.usize())?;
        if last_best.is_some_and(|b| b >= k) || pending_arm.is_some_and(|a| a >= k) {
            return Err(CkptError::Malformed("arm index out of range".into()));
        }
        Ok(Self {
            sigma,
            delta,
            cfg,
            est,
            counts,
            t,
            finished,
            stop_reason,
            last_best,
            consec_best,
            pending_arm,
        })
    }

    /// Runs the full identification loop against a reward oracle, returning
    /// `(recommended_arm, rounds, stop_reason)`.
    pub fn run<F>(mut self, mut pull: F) -> (usize, usize, StopReason)
    where
        F: FnMut(usize) -> Vec<f64>,
    {
        while !self.finished() {
            let arm = self.next_arm();
            let y = pull(arm);
            self.observe(arm, &y);
        }
        (self.recommend(), self.rounds(), self.stop_reason.unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::GaussianEnv;

    fn run_once(mu: Vec<f64>, sigma: SideInfo, seed: u64, cfg: TasConfig) -> (usize, usize, StopReason) {
        let mut env = GaussianEnv::new(mu, sigma.clone(), seed);
        TrackAndStopSideInfo::new(sigma, 0.05, cfg).run(|arm| env.pull(arm))
    }

    #[test]
    fn identifies_clear_best_arm() {
        let sigma = SideInfo::uniform(4, 0.05);
        let (arm, rounds, _) = run_once(vec![0.8, 0.5, 0.4, 0.3], sigma, 1, TasConfig::default());
        assert_eq!(arm, 0);
        assert!(rounds < 200, "took {rounds} rounds");
    }

    #[test]
    fn soundness_over_many_seeds() {
        // With δ = 0.05 the error rate over 100 runs should be well below
        // ~3σ of a Binomial(100, 0.05): allow up to 11 errors.
        let sigma = SideInfo::two_level(3, 0.05, 0.15);
        let mu = vec![0.55, 0.50, 0.40];
        let mut errors = 0;
        for seed in 0..100 {
            let cfg = TasConfig { stability_rounds: None, ..TasConfig::default() };
            let (arm, _, _) = run_once(mu.clone(), sigma.clone(), seed, cfg);
            if arm != 0 {
                errors += 1;
            }
        }
        assert!(errors <= 11, "{errors} errors in 100 runs at δ=0.05");
    }

    #[test]
    fn harder_problems_take_longer() {
        let sigma = SideInfo::uniform(3, 0.05);
        let cfg = TasConfig { stability_rounds: None, ..TasConfig::default() };
        let mut easy_total = 0usize;
        let mut hard_total = 0usize;
        for seed in 0..10 {
            easy_total += run_once(vec![0.8, 0.4, 0.3], sigma.clone(), seed, cfg).1;
            hard_total += run_once(vec![0.52, 0.50, 0.30], sigma.clone(), seed, cfg).1;
        }
        assert!(hard_total > easy_total, "hard {hard_total} should exceed easy {easy_total}");
    }

    #[test]
    fn stability_criterion_stops_early() {
        let sigma = SideInfo::uniform(3, 0.02);
        let cfg = TasConfig { stability_rounds: Some(5), ..TasConfig::default() };
        let (arm, rounds, reason) = run_once(vec![0.7, 0.5, 0.3], sigma, 3, cfg);
        assert_eq!(arm, 0);
        assert!(rounds <= 20);
        // Either stop is fine, but with tiny noise stability usually fires.
        assert!(matches!(reason, StopReason::Stability | StopReason::Threshold));
    }

    #[test]
    fn budget_stop_reported() {
        let sigma = SideInfo::uniform(2, 5.0); // extremely noisy
        let cfg = TasConfig { max_rounds: 10, stability_rounds: None, ..TasConfig::default() };
        let (_, rounds, reason) = run_once(vec![0.501, 0.5], sigma, 4, cfg);
        assert_eq!(rounds, 10);
        assert_eq!(reason, StopReason::Budget);
    }

    #[test]
    fn initialization_plays_every_arm_once() {
        let sigma = SideInfo::uniform(5, 0.1);
        let mut tas = TrackAndStopSideInfo::new(sigma, 0.05, TasConfig::default());
        let mut played = Vec::new();
        for _ in 0..5 {
            let a = tas.next_arm();
            played.push(a);
            tas.observe(a, &[0.5, 0.4, 0.3, 0.2, 0.1]);
        }
        let mut sorted = played.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_arm_trivially_finished() {
        let tas = TrackAndStopSideInfo::new(SideInfo::uniform(1, 0.1), 0.05, TasConfig::default());
        assert!(tas.finished());
        assert_eq!(tas.recommend(), 0);
    }

    #[test]
    fn next_arm_idempotent_until_observe() {
        let sigma = SideInfo::uniform(3, 0.1);
        let mut tas = TrackAndStopSideInfo::new(sigma, 0.05, TasConfig::default());
        let a = tas.next_arm();
        assert_eq!(a, tas.next_arm());
    }

    #[test]
    #[should_panic(expected = "differs from next_arm")]
    fn observe_must_match_next_arm() {
        let sigma = SideInfo::uniform(3, 0.1);
        let mut tas = TrackAndStopSideInfo::new(sigma, 0.05, TasConfig::default());
        let _ = tas.next_arm(); // arm 0
        tas.observe(2, &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn codec_roundtrip_mid_identification_resumes_identically() {
        let sigma = SideInfo::two_level(4, 0.05, 0.12);
        let mut env = GaussianEnv::new(vec![0.6, 0.55, 0.4, 0.3], sigma.clone(), 21);
        let cfg = TasConfig { stability_rounds: None, max_rounds: 500, ..TasConfig::default() };
        let mut original = TrackAndStopSideInfo::new(sigma, 0.05, cfg);
        // Progress past initialization, stop mid-run with a pending arm.
        for _ in 0..6 {
            let a = original.next_arm();
            let y = env.pull(a);
            original.observe(a, &y);
        }
        let _ = original.next_arm(); // leave a pending (un-observed) arm

        let mut enc = Enc::new();
        original.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let mut restored = TrackAndStopSideInfo::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(restored.means(), original.means());
        assert_eq!(restored.deployment_counts(), original.deployment_counts());
        assert_eq!(restored.rounds(), original.rounds());
        // Canonical encoding.
        let mut re = Enc::new();
        restored.encode_state(&mut re);
        assert_eq!(re.into_bytes(), bytes);

        // Both runs continue identically on the same reward stream.
        let mut env2 = env.clone();
        while !original.finished() {
            let a = original.next_arm();
            assert_eq!(a, restored.next_arm(), "arm choice diverged");
            let y = env2.pull(a);
            original.observe(a, &y);
            restored.observe(a, &y);
            assert_eq!(original.finished(), restored.finished());
        }
        assert_eq!(original.recommend(), restored.recommend());
        assert_eq!(original.stop_reason(), restored.stop_reason());
    }

    #[test]
    fn codec_rejects_corrupt_state() {
        let sigma = SideInfo::uniform(3, 0.1);
        let tas = TrackAndStopSideInfo::new(sigma, 0.05, TasConfig::default());
        let mut enc = Enc::new();
        tas.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        for keep in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..keep]);
            assert!(
                TrackAndStopSideInfo::decode_state(&mut dec).and_then(|_| dec.finish()).is_err(),
                "truncation to {keep} accepted"
            );
        }
    }

    #[test]
    fn theorem1_threshold_grows_linearly() {
        let sigma = SideInfo::uniform(3, 0.1);
        let cfg = TasConfig {
            beta: BetaRule::Theorem1 { c: 1.0 },
            stability_rounds: None,
            max_rounds: 50,
            ..TasConfig::default()
        };
        let mut tas = TrackAndStopSideInfo::new(sigma, 0.05, cfg);
        let _ = tas.next_arm();
        tas.observe(0, &[0.9, 0.1, 0.1]);
        let b1 = tas.threshold();
        for _ in 0..10 {
            if tas.finished() {
                break;
            }
            let a = tas.next_arm();
            tas.observe(a, &[0.9, 0.1, 0.1]);
        }
        assert!(tas.threshold() > b1);
    }

    #[test]
    fn side_info_beats_no_side_info_in_rounds() {
        // Identical problem; side info with informative off-diagonal samples
        // vs (nearly) uninformative ones. Expect fewer rounds with real side
        // information, on average.
        let mu = vec![0.6, 0.5, 0.45, 0.4];
        let cfg = TasConfig { stability_rounds: None, ..TasConfig::default() };
        let informative = SideInfo::two_level(4, 0.05, 0.08);
        let uninformative = SideInfo::two_level(4, 0.05, 3.0);
        let mut with_si = 0usize;
        let mut without_si = 0usize;
        for seed in 0..8 {
            with_si += run_once(mu.clone(), informative.clone(), seed, cfg).1;
            without_si += run_once(mu.clone(), uninformative.clone(), seed, cfg).1;
        }
        assert!(with_si < without_si, "side info {with_si} rounds ≥ weak side info {without_si}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::env::GaussianEnv;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Whatever the environment, the run terminates, the recommendation
        /// is a valid arm, and the deployment counts sum to the rounds.
        #[test]
        fn run_invariants(
            mu in proptest::collection::vec(0.0f64..1.0, 2..6),
            seed in 0u64..1000,
        ) {
            let k = mu.len();
            let sigma = SideInfo::two_level(k, 0.05, 0.12);
            let cfg = TasConfig { max_rounds: 3_000, ..TasConfig::default() };
            let mut env = GaussianEnv::new(mu, sigma.clone(), seed);
            let mut tas = TrackAndStopSideInfo::new(sigma, 0.1, cfg);
            while !tas.finished() {
                let arm = tas.next_arm();
                prop_assert!(arm < k);
                let y = env.pull(arm);
                tas.observe(arm, &y);
            }
            prop_assert!(tas.recommend() < k);
            let total: f64 = tas.deployment_counts().iter().sum();
            prop_assert_eq!(total as usize, tas.rounds());
            prop_assert!(tas.stop_reason().is_some());
        }

        /// The information level is always non-negative and the threshold
        /// positive.
        #[test]
        fn information_level_nonnegative(seed in 0u64..200) {
            let sigma = SideInfo::uniform(3, 0.1);
            let mut env = GaussianEnv::new(vec![0.6, 0.5, 0.4], sigma.clone(), seed);
            let cfg = TasConfig { max_rounds: 50, stability_rounds: None, ..TasConfig::default() };
            let mut tas = TrackAndStopSideInfo::new(sigma, 0.05, cfg);
            for _ in 0..20 {
                if tas.finished() { break; }
                let arm = tas.next_arm();
                let y = env.pull(arm);
                tas.observe(arm, &y);
                prop_assert!(tas.information_level() >= 0.0);
                prop_assert!(tas.threshold() > 0.0);
            }
        }
    }
}
