//! Cumulative-regret algorithms: UCB1 and a side-information UCB.
//!
//! Darwin deliberately chooses *best-arm identification* over cumulative
//! regret (§4.2, footnote 3): the operator wants to lock in the best expert
//! and stop exploring, not to trade off exploration forever. These
//! implementations exist to demonstrate that contrast empirically (the
//! regret-style policies keep paying exploration cost long after TaS-SI has
//! committed) and to cover the Wu et al. / Atsidakou et al. setting the
//! paper builds its feedback model on.

use crate::env::SideInfo;
use crate::estimator::WeightedEstimator;

/// Classical UCB1 over `K` arms with rewards assumed sub-Gaussian with
/// parameter `sigma`.
#[derive(Debug, Clone)]
pub struct Ucb1 {
    sigma: f64,
    sums: Vec<f64>,
    counts: Vec<u64>,
    t: u64,
}

impl Ucb1 {
    /// UCB1 with `k` arms and sub-Gaussian scale `sigma`.
    pub fn new(k: usize, sigma: f64) -> Self {
        assert!(k > 0, "at least one arm required");
        assert!(sigma > 0.0, "sigma must be positive");
        Self { sigma, sums: vec![0.0; k], counts: vec![0; k], t: 0 }
    }

    /// Number of arms.
    pub fn k(&self) -> usize {
        self.sums.len()
    }

    /// Rounds played.
    pub fn rounds(&self) -> u64 {
        self.t
    }

    /// The arm to play next: unplayed arms first, then the highest upper
    /// confidence bound `μ̂_i + σ √(2 ln t / T_i)`.
    pub fn next_arm(&self) -> usize {
        if let Some(i) = self.counts.iter().position(|&c| c == 0) {
            return i;
        }
        let t = (self.t.max(2)) as f64;
        (0..self.k())
            .max_by(|&a, &b| {
                let ua = self.sums[a] / self.counts[a] as f64
                    + self.sigma * (2.0 * t.ln() / self.counts[a] as f64).sqrt();
                let ub = self.sums[b] / self.counts[b] as f64
                    + self.sigma * (2.0 * t.ln() / self.counts[b] as f64).sqrt();
                ua.partial_cmp(&ub).unwrap()
            })
            .expect("non-empty arm set")
    }

    /// Records the reward of the played arm.
    pub fn observe(&mut self, arm: usize, reward: f64) {
        self.sums[arm] += reward;
        self.counts[arm] += 1;
        self.t += 1;
    }

    /// Empirically best arm.
    pub fn best_arm(&self) -> usize {
        (0..self.k())
            .filter(|&i| self.counts[i] > 0)
            .max_by(|&a, &b| {
                let ma = self.sums[a] / self.counts[a] as f64;
                let mb = self.sums[b] / self.counts[b] as f64;
                ma.partial_cmp(&mb).unwrap()
            })
            .unwrap_or(0)
    }
}

/// UCB over the side-information feedback model: every round updates every
/// arm through the weighted estimator of Eq (1); confidence widths shrink
/// with accumulated *precision* instead of play counts (the Gaussian
/// side-observation policy of Wu et al. / Atsidakou et al., simplified).
#[derive(Debug, Clone)]
pub struct SideInfoUcb {
    est: WeightedEstimator,
    t: u64,
}

impl SideInfoUcb {
    /// Policy for the given side-information matrix.
    pub fn new(sigma: SideInfo) -> Self {
        Self { est: WeightedEstimator::new(sigma), t: 0 }
    }

    /// Number of arms.
    pub fn k(&self) -> usize {
        self.est.k()
    }

    /// Rounds played.
    pub fn rounds(&self) -> u64 {
        self.t
    }

    /// The arm with the highest upper confidence bound
    /// `μ̂_i + √(2 ln t / ρ_i)` (ρ = accumulated precision).
    pub fn next_arm(&self) -> usize {
        if self.t == 0 {
            return 0;
        }
        let t = (self.t.max(2)) as f64;
        (0..self.k())
            .max_by(|&a, &b| {
                let wa = self.est.mean(a) + (2.0 * t.ln() / self.est.precision(a).max(1e-12)).sqrt();
                let wb = self.est.mean(b) + (2.0 * t.ln() / self.est.precision(b).max(1e-12)).sqrt();
                wa.partial_cmp(&wb).unwrap()
            })
            .expect("non-empty arm set")
    }

    /// Records a full reward vector observed while `arm` was deployed.
    pub fn observe(&mut self, arm: usize, y: &[f64]) {
        self.est.observe(arm, y);
        self.t += 1;
    }

    /// Empirically best arm.
    pub fn best_arm(&self) -> usize {
        self.est.best_arm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::GaussianEnv;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ucb1_converges_to_best_arm() {
        let mu = [0.3, 0.7, 0.5];
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ucb = Ucb1::new(3, 0.1);
        let mut pulls = [0u64; 3];
        for _ in 0..2000 {
            let arm = ucb.next_arm();
            pulls[arm] += 1;
            let z: f64 = rng.sample(rand_distr::StandardNormal);
            ucb.observe(arm, mu[arm] + 0.1 * z);
        }
        assert_eq!(ucb.best_arm(), 1);
        assert!(pulls[1] > pulls[0] + pulls[2], "best arm under-played: {pulls:?}");
    }

    #[test]
    fn ucb1_plays_every_arm_first() {
        let mut ucb = Ucb1::new(4, 1.0);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let a = ucb.next_arm();
            seen.push(a);
            ucb.observe(a, 0.0);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn side_info_ucb_converges_faster_in_regret() {
        // With informative side observations, cumulative regret over a fixed
        // horizon should be lower than classical UCB1's.
        let mu = vec![0.7, 0.5, 0.45, 0.4];
        let sigma = SideInfo::uniform(4, 0.1);
        let horizon = 1500;

        let mut env = GaussianEnv::new(mu.clone(), sigma.clone(), 2);
        let mut si = SideInfoUcb::new(sigma.clone());
        let mut regret_si = 0.0;
        for _ in 0..horizon {
            let arm = si.next_arm();
            regret_si += mu[0] - mu[arm];
            let y = env.pull(arm);
            si.observe(arm, &y);
        }

        let mut rng = SmallRng::seed_from_u64(3);
        let mut ucb = Ucb1::new(4, 0.1);
        let mut regret_ucb = 0.0;
        for _ in 0..horizon {
            let arm = ucb.next_arm();
            regret_ucb += mu[0] - mu[arm];
            let z: f64 = rng.sample(rand_distr::StandardNormal);
            ucb.observe(arm, mu[arm] + 0.1 * z);
        }
        assert!(
            regret_si < regret_ucb,
            "side-info regret {regret_si:.2} not below UCB1 {regret_ucb:.2}"
        );
    }

    #[test]
    fn regret_policies_never_stop_exploring() {
        // The §4.2 contrast: a regret policy keeps occasionally playing
        // suboptimal arms late in the horizon, whereas TaS stops.
        let mu = [0.6, 0.5];
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ucb = Ucb1::new(2, 0.2);
        let mut late_suboptimal = 0;
        for t in 0..5000 {
            let arm = ucb.next_arm();
            if t > 2500 && arm != 0 {
                late_suboptimal += 1;
            }
            let z: f64 = rng.sample(rand_distr::StandardNormal);
            ucb.observe(arm, mu[arm] + 0.2 * z);
        }
        assert!(late_suboptimal > 0, "UCB1 stopped exploring, unexpectedly");
    }
}
