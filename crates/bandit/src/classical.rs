//! Classical Track-and-Stop (standard bandit feedback).
//!
//! The comparison point for the paper's key theoretical claim: with standard
//! feedback (only the deployed arm's reward is observed) the identification
//! time grows linearly in the number of arms `K`, whereas with side
//! information it is `O(1)` in `K` (Theorem 2 discussion).
//!
//! Implementation note: standard feedback is the degenerate side-information
//! model where off-diagonal variances are enormous (fictitious samples carry
//! ~zero weight in the Eq-1 estimator). We reuse [`TrackAndStopSideInfo`]
//! with such a matrix, feed zeros for the unobserved entries, and enable
//! forced exploration (required without side information, since an arm's
//! estimate only moves when it is played).

use crate::env::SideInfo;
use crate::tas::{StopReason, TasConfig, TrackAndStopSideInfo};

/// Variance assigned to unobserved (off-diagonal) samples; large enough that
/// their estimator weight (1/σ²) is negligible against real samples.
const UNOBSERVED_VARIANCE: f64 = 1e12;

/// Classical Track-and-Stop over `K` arms with per-arm reward variances.
#[derive(Debug, Clone)]
pub struct ClassicalTrackAndStop {
    inner: TrackAndStopSideInfo,
}

impl ClassicalTrackAndStop {
    /// `variances[i]` is the reward variance of arm `i`.
    pub fn new(variances: &[f64], delta: f64, cfg: TasConfig) -> Self {
        let k = variances.len();
        assert!(k > 0, "at least one arm required");
        let mut m = vec![vec![UNOBSERVED_VARIANCE; k]; k];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = variances[i];
        }
        let cfg = TasConfig { forced_exploration: true, ..cfg };
        Self { inner: TrackAndStopSideInfo::new(SideInfo::new(m), delta, cfg) }
    }

    /// Equal-variance convenience constructor.
    pub fn homoscedastic(k: usize, sigma: f64, delta: f64, cfg: TasConfig) -> Self {
        Self::new(&vec![sigma * sigma; k], delta, cfg)
    }

    /// Whether identification has terminated.
    pub fn finished(&self) -> bool {
        self.inner.finished()
    }

    /// Rounds completed.
    pub fn rounds(&self) -> usize {
        self.inner.rounds()
    }

    /// The next arm to play.
    pub fn next_arm(&mut self) -> usize {
        self.inner.next_arm()
    }

    /// Ingests the scalar reward of the played arm.
    pub fn observe(&mut self, arm: usize, reward: f64) {
        let mut y = vec![0.0; self.inner.k()];
        y[arm] = reward;
        self.inner.observe(arm, &y);
    }

    /// Recommended arm.
    pub fn recommend(&self) -> usize {
        self.inner.recommend()
    }

    /// Stop reason (None while running).
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.inner.stop_reason()
    }

    /// Runs to completion against a scalar reward oracle.
    pub fn run<F>(mut self, mut pull: F) -> (usize, usize, StopReason)
    where
        F: FnMut(usize) -> f64,
    {
        while !self.finished() {
            let arm = self.next_arm();
            let r = pull(arm);
            self.observe(arm, r);
        }
        (self.recommend(), self.rounds(), self.stop_reason().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_oracle(mu: Vec<f64>, sigma: f64, seed: u64) -> impl FnMut(usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        move |arm| {
            let z: f64 = rng.sample(rand_distr::StandardNormal);
            mu[arm] + sigma * z
        }
    }

    #[test]
    fn identifies_best_arm() {
        let cfg = TasConfig { stability_rounds: None, ..TasConfig::default() };
        let tas = ClassicalTrackAndStop::homoscedastic(3, 0.05, 0.05, cfg);
        let (arm, _, _) = tas.run(gaussian_oracle(vec![0.4, 0.7, 0.5], 0.05, 1));
        assert_eq!(arm, 1);
    }

    #[test]
    fn rounds_grow_with_k() {
        // The headline contrast of Theorem 2: classical identification time
        // scales with the number of arms.
        let cfg = TasConfig { stability_rounds: None, max_rounds: 100_000, ..TasConfig::default() };
        let mut rounds_small = 0usize;
        let mut rounds_large = 0usize;
        for seed in 0..5 {
            let mu_small: Vec<f64> = (0..3).map(|i| 0.6 - 0.1 * i as f64).collect();
            let mu_large: Vec<f64> = (0..12).map(|i| 0.6 - 0.1 * (i.min(5)) as f64).collect();
            rounds_small += ClassicalTrackAndStop::homoscedastic(3, 0.1, 0.05, cfg)
                .run(gaussian_oracle(mu_small, 0.1, seed))
                .1;
            rounds_large += ClassicalTrackAndStop::homoscedastic(12, 0.1, 0.05, cfg)
                .run(gaussian_oracle(mu_large, 0.1, seed))
                .1;
        }
        assert!(rounds_large > rounds_small, "K=12 took {rounds_large} ≤ K=3 {rounds_small}");
    }

    #[test]
    fn forced_exploration_keeps_all_arms_alive() {
        let cfg = TasConfig { stability_rounds: None, max_rounds: 400, ..TasConfig::default() };
        let mut tas = ClassicalTrackAndStop::homoscedastic(4, 0.3, 0.05, cfg);
        let mut counts = [0usize; 4];
        let mut oracle = gaussian_oracle(vec![0.5, 0.49, 0.48, 0.47], 0.3, 2);
        while !tas.finished() {
            let a = tas.next_arm();
            counts[a] += 1;
            let r = oracle(a);
            tas.observe(a, r);
        }
        assert!(counts.iter().all(|&c| c >= 2), "some arm starved: {counts:?}");
    }
}
