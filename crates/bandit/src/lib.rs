#![warn(missing_docs)]

//! # darwin-bandit
//!
//! Best-arm identification bandits, centred on the paper's contribution:
//! **Track and Stop with Side Information** (Algorithm 1 of §4.2).
//!
//! ## The setting
//!
//! `K` experts (arms) have unknown mean rewards `μ ∈ ℝᴷ`. When arm `i` is
//! *deployed* for a round, the learner observes a full reward vector
//! `Y = (Y_1 … Y_K)`: the deployed arm's entry is a real measurement; every
//! other entry is a *fictitious sample* produced by Darwin's cross-expert
//! predictors. Each `Y_j` is modeled as Gaussian with mean `μ_j` and a
//! variance `σ²_{ij}` that depends on which arm `i` was deployed — the
//! **side-information matrix** `Σ ∈ ℝ^{K×K}`.
//!
//! The goal is δ-sound pure exploration: stop as early as possible while
//! recommending the true best arm with probability ≥ 1 − δ. The paper proves
//! (Theorems 1 & 2) that with this feedback the stopping time does **not**
//! scale with `K`, unlike classical bandit feedback.
//!
//! ## What's here
//!
//! * [`SideInfo`] — the variance matrix and its derived constants
//!   (σ²_min, σ²_max, κ).
//! * [`WeightedEstimator`] — the variance-weighted mean estimator of Eq (1).
//! * [`oracle`] — the alternative-environment divergence `Φ(ν, α)` (Eq 2) and
//!   the optimal deployment proportions `α*(ν, Σ)` (Eq 3).
//! * [`TrackAndStopSideInfo`] — Algorithm 1: D-tracking of `α*`, the
//!   information level `Z_t`, and the stopping threshold `β_t(δ, Σ)`
//!   (Theorem 1's form, plus the standard Garivier–Kaufmann practical
//!   threshold and the paper's 5-consecutive-rounds stability criterion from
//!   §6.2).
//! * [`ClassicalTrackAndStop`] — the standard-feedback baseline, used to
//!   reproduce the "stopping time grows linearly in K without side
//!   information" comparison.
//! * [`SuccessiveElimination`] — a simple elimination baseline.
//! * [`GaussianEnv`] — a synthetic environment for the theory experiments.
//!
//! ```
//! use darwin_bandit::{GaussianEnv, SideInfo, TrackAndStopSideInfo, TasConfig};
//!
//! let mu = vec![0.50, 0.45, 0.40];
//! let sigma = SideInfo::uniform(3, 0.05);
//! let mut env = GaussianEnv::new(mu, sigma.clone(), 7);
//! let mut tas = TrackAndStopSideInfo::new(sigma, 0.05, TasConfig::default());
//! while !tas.finished() {
//!     let arm = tas.next_arm();
//!     let y = env.pull(arm);
//!     tas.observe(arm, &y);
//! }
//! assert_eq!(tas.recommend(), 0);
//! ```

pub mod classical;
pub mod elimination;
pub mod env;
pub mod estimator;
pub mod oracle;
pub mod tas;
pub mod ucb;

pub use classical::ClassicalTrackAndStop;
pub use elimination::SuccessiveElimination;
pub use env::GaussianEnv;
pub use env::SideInfo;
pub use estimator::WeightedEstimator;
pub use tas::{BetaRule, TasConfig, TrackAndStopSideInfo};
pub use ucb::{SideInfoUcb, Ucb1};
