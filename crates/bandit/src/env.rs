//! The side-information matrix and a synthetic Gaussian environment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The side-information matrix Σ of §4.2: `sigma2[i][j]` is the variance of
/// the (possibly fictitious) reward sample observed for arm `j` when arm `i`
/// is deployed. Diagonal entries are the real-measurement variances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SideInfo {
    sigma2: Vec<Vec<f64>>,
}

impl SideInfo {
    /// Wraps a full variance matrix.
    ///
    /// # Panics
    /// Panics unless the matrix is square with strictly positive entries.
    pub fn new(sigma2: Vec<Vec<f64>>) -> Self {
        let k = sigma2.len();
        assert!(k > 0, "at least one arm required");
        assert!(sigma2.iter().all(|row| row.len() == k), "matrix must be square");
        assert!(
            sigma2.iter().flatten().all(|&v| v > 0.0 && v.is_finite()),
            "variances must be positive and finite"
        );
        Self { sigma2 }
    }

    /// All variances equal (`σ²`): side information as informative as direct
    /// observation — the full-feedback extreme.
    pub fn uniform(k: usize, sigma: f64) -> Self {
        Self::new(vec![vec![sigma * sigma; k]; k])
    }

    /// Diagonal variance `σ²_own`, off-diagonal `σ²_cross` — the typical
    /// Darwin case where fictitious samples are noisier than real ones.
    pub fn two_level(k: usize, sigma_own: f64, sigma_cross: f64) -> Self {
        let mut m = vec![vec![sigma_cross * sigma_cross; k]; k];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = sigma_own * sigma_own;
        }
        Self::new(m)
    }

    /// Number of arms.
    pub fn k(&self) -> usize {
        self.sigma2.len()
    }

    /// Variance of arm `j`'s sample when arm `i` is deployed.
    pub fn var(&self, deployed: usize, observed: usize) -> f64 {
        self.sigma2[deployed][observed]
    }

    /// Smallest variance in the matrix (σ²_min of Theorem 1).
    pub fn sigma2_min(&self) -> f64 {
        self.sigma2.iter().flatten().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest variance in the matrix (σ²_max of Theorem 1).
    pub fn sigma2_max(&self) -> f64 {
        self.sigma2.iter().flatten().copied().fold(0.0, f64::max)
    }

    /// The conditioning ratio κ = σ²_min / σ²_max ∈ (0, 1].
    pub fn kappa(&self) -> f64 {
        self.sigma2_min() / self.sigma2_max()
    }

    /// Serializes the variance matrix row by row, bit-exactly.
    pub fn encode_state(&self, enc: &mut darwin_ckpt::Enc) {
        enc.seq(&self.sigma2, |e, row| e.seq(row, |e, &v| e.f64(v)));
    }

    /// Rebuilds side information from bytes written by
    /// [`SideInfo::encode_state`], re-validating squareness and positivity.
    pub fn decode_state(dec: &mut darwin_ckpt::Dec<'_>) -> Result<Self, darwin_ckpt::CkptError> {
        let sigma2: Vec<Vec<f64>> = dec.seq(|d| d.seq(|d| d.f64()))?;
        let k = sigma2.len();
        if k == 0
            || sigma2.iter().any(|row| row.len() != k)
            || sigma2.iter().flatten().any(|&v| v <= 0.0 || !v.is_finite())
        {
            return Err(darwin_ckpt::CkptError::Malformed("invalid side-info matrix".into()));
        }
        Ok(Self { sigma2 })
    }
}

/// A synthetic environment with Gaussian rewards and side information, used
/// by the theory experiments (stopping-time scaling, soundness checks).
#[derive(Debug, Clone)]
pub struct GaussianEnv {
    mu: Vec<f64>,
    sigma: SideInfo,
    rng: SmallRng,
}

impl GaussianEnv {
    /// Environment with mean vector `mu` and side information `sigma`.
    pub fn new(mu: Vec<f64>, sigma: SideInfo, seed: u64) -> Self {
        assert_eq!(mu.len(), sigma.k(), "mu/sigma dimension mismatch");
        Self { mu, sigma, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Number of arms.
    pub fn k(&self) -> usize {
        self.mu.len()
    }

    /// True mean rewards.
    pub fn mu(&self) -> &[f64] {
        &self.mu
    }

    /// Index of the true best arm.
    pub fn best_arm(&self) -> usize {
        self.mu.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i).unwrap()
    }

    /// Deploys arm `i` for one round, returning the full reward vector
    /// (real sample for `i`, fictitious samples for the rest).
    pub fn pull(&mut self, deployed: usize) -> Vec<f64> {
        (0..self.mu.len())
            .map(|j| {
                let z: f64 = self.rng.sample(rand_distr::StandardNormal);
                self.mu[j] + self.sigma.var(deployed, j).sqrt() * z
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_side_info_constants() {
        let s = SideInfo::uniform(4, 0.1);
        assert_eq!(s.k(), 4);
        assert!((s.sigma2_min() - 0.01).abs() < 1e-12);
        assert!((s.kappa() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_level_diagonal_differs() {
        let s = SideInfo::two_level(3, 0.1, 0.3);
        assert!((s.var(0, 0) - 0.01).abs() < 1e-12);
        assert!((s.var(0, 1) - 0.09).abs() < 1e-12);
        assert!((s.kappa() - 0.01 / 0.09).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_ragged_matrix() {
        SideInfo::new(vec![vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_variance() {
        SideInfo::new(vec![vec![0.0]]);
    }

    #[test]
    fn env_samples_have_right_mean_and_variance() {
        let mu = vec![1.0, -2.0];
        let s = SideInfo::two_level(2, 0.5, 1.5);
        let mut env = GaussianEnv::new(mu, s, 3);
        let n = 20_000;
        let mut sums = [0.0f64; 2];
        let mut sqs = [0.0f64; 2];
        for _ in 0..n {
            let y = env.pull(0);
            for j in 0..2 {
                sums[j] += y[j];
                sqs[j] += y[j] * y[j];
            }
        }
        let mean0 = sums[0] / n as f64;
        let mean1 = sums[1] / n as f64;
        assert!((mean0 - 1.0).abs() < 0.02, "mean0 {mean0}");
        assert!((mean1 + 2.0).abs() < 0.05, "mean1 {mean1}");
        let var0 = sqs[0] / n as f64 - mean0 * mean0;
        let var1 = sqs[1] / n as f64 - mean1 * mean1;
        assert!((var0 - 0.25).abs() < 0.02, "var0 {var0}");
        assert!((var1 - 2.25).abs() < 0.15, "var1 {var1}");
    }

    #[test]
    fn best_arm_is_argmax() {
        let env = GaussianEnv::new(vec![0.1, 0.9, 0.5], SideInfo::uniform(3, 1.0), 1);
        assert_eq!(env.best_arm(), 1);
    }
}
