//! The variance-weighted mean estimator of Eq (1).
//!
//! Each round contributes one sample *per arm* (real for the deployed arm,
//! fictitious for the others), weighted by the inverse of its deployment-
//! dependent variance:
//!
//! ```text
//! μ̂_i(t) = (Σ_n Y_i(n) / σ²_{E_n,i}) / ρ_i(t),   ρ_i(t) = Σ_n 1 / σ²_{E_n,i}
//! ```
//!
//! This is the minimum-variance unbiased combination of the heteroscedastic
//! Gaussian samples (previously used by Atsidakou et al. for the cumulative-
//! regret version of this feedback model).

use crate::env::SideInfo;

/// Running weighted estimates `μ̂(t)` and precisions `ρ(t)` for all arms.
#[derive(Debug, Clone)]
pub struct WeightedEstimator {
    sigma: SideInfo,
    weighted_sum: Vec<f64>,
    precision: Vec<f64>,
    rounds: usize,
}

impl WeightedEstimator {
    /// Fresh estimator for the given side information.
    pub fn new(sigma: SideInfo) -> Self {
        let k = sigma.k();
        Self { sigma, weighted_sum: vec![0.0; k], precision: vec![0.0; k], rounds: 0 }
    }

    /// Number of arms.
    pub fn k(&self) -> usize {
        self.weighted_sum.len()
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Ingests one round's reward vector `y`, observed while `deployed` was
    /// the deployed arm.
    pub fn observe(&mut self, deployed: usize, y: &[f64]) {
        assert_eq!(y.len(), self.k(), "reward vector dimension mismatch");
        assert!(deployed < self.k(), "deployed arm out of range");
        for (j, &yj) in y.iter().enumerate() {
            let w = 1.0 / self.sigma.var(deployed, j);
            self.weighted_sum[j] += w * yj;
            self.precision[j] += w;
        }
        self.rounds += 1;
    }

    /// Current estimate for arm `i` (0 before any observation).
    pub fn mean(&self, i: usize) -> f64 {
        if self.precision[i] == 0.0 {
            0.0
        } else {
            self.weighted_sum[i] / self.precision[i]
        }
    }

    /// All current estimates.
    pub fn means(&self) -> Vec<f64> {
        (0..self.k()).map(|i| self.mean(i)).collect()
    }

    /// Accumulated precision ρ_i(t) for arm `i`.
    pub fn precision(&self, i: usize) -> f64 {
        self.precision[i]
    }

    /// The empirically best arm (ties broken toward the lower index).
    pub fn best_arm(&self) -> usize {
        let means = self.means();
        means.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i).unwrap()
    }

    /// Serializes the estimator (side info, accumulators, round count).
    pub fn encode_state(&self, enc: &mut darwin_ckpt::Enc) {
        self.sigma.encode_state(enc);
        enc.seq(&self.weighted_sum, |e, &v| e.f64(v));
        enc.seq(&self.precision, |e, &v| e.f64(v));
        enc.usize(self.rounds);
    }

    /// Rebuilds an estimator from bytes written by
    /// [`WeightedEstimator::encode_state`].
    pub fn decode_state(dec: &mut darwin_ckpt::Dec<'_>) -> Result<Self, darwin_ckpt::CkptError> {
        let sigma = SideInfo::decode_state(dec)?;
        let weighted_sum = dec.seq(|d| d.f64())?;
        let precision = dec.seq(|d| d.f64())?;
        let rounds = dec.usize()?;
        if weighted_sum.len() != sigma.k() || precision.len() != sigma.k() {
            return Err(darwin_ckpt::CkptError::Malformed(
                "estimator accumulator length mismatch".into(),
            ));
        }
        Ok(Self { sigma, weighted_sum, precision, rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_observation_recovers_value() {
        let mut e = WeightedEstimator::new(SideInfo::uniform(2, 1.0));
        e.observe(0, &[0.7, 0.3]);
        assert!((e.mean(0) - 0.7).abs() < 1e-12);
        assert!((e.mean(1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn equal_variances_give_plain_average() {
        let mut e = WeightedEstimator::new(SideInfo::uniform(1, 2.0));
        e.observe(0, &[1.0]);
        e.observe(0, &[3.0]);
        assert!((e.mean(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighting_matches_closed_form() {
        // Arm 1 observed once with var 1 (deployed=1) and once with var 4
        // (deployed=0): estimate = (y1/1 + y2/4) / (1 + 1/4).
        let sigma = SideInfo::new(vec![vec![1.0, 4.0], vec![1.0, 1.0]]);
        let mut e = WeightedEstimator::new(sigma);
        e.observe(1, &[0.0, 2.0]);
        e.observe(0, &[0.0, 6.0]);
        let expect = (2.0 / 1.0 + 6.0 / 4.0) / (1.0 + 0.25);
        assert!((e.mean(1) - expect).abs() < 1e-12);
    }

    #[test]
    fn precision_accumulates_inverse_variances() {
        let sigma = SideInfo::new(vec![vec![0.5, 2.0], vec![1.0, 0.25]]);
        let mut e = WeightedEstimator::new(sigma);
        e.observe(0, &[0.0, 0.0]);
        e.observe(1, &[0.0, 0.0]);
        assert!((e.precision(0) - (2.0 + 1.0)).abs() < 1e-12);
        assert!((e.precision(1) - (0.5 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn best_arm_tracks_means() {
        let mut e = WeightedEstimator::new(SideInfo::uniform(3, 1.0));
        e.observe(0, &[0.1, 0.9, 0.5]);
        assert_eq!(e.best_arm(), 1);
    }

    #[test]
    fn unbiased_under_many_samples() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let sigma = SideInfo::two_level(2, 0.2, 0.6);
        let mut e = WeightedEstimator::new(sigma.clone());
        let mut rng = SmallRng::seed_from_u64(5);
        for t in 0..20_000 {
            let deployed = t % 2;
            let y: Vec<f64> = (0..2)
                .map(|j| {
                    let z: f64 = rng.sample(rand_distr::StandardNormal);
                    0.4 + 0.1 * j as f64 + sigma.var(deployed, j).sqrt() * z
                })
                .collect();
            e.observe(deployed, &y);
        }
        assert!((e.mean(0) - 0.4).abs() < 0.01, "mean0 {}", e.mean(0));
        assert!((e.mean(1) - 0.5).abs() < 0.01, "mean1 {}", e.mean(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The weighted estimate is always within the range of its samples.
        #[test]
        fn estimate_within_sample_range(
            samples in proptest::collection::vec((-10.0f64..10.0, 0usize..3), 1..50)
        ) {
            let sigma = SideInfo::new(vec![
                vec![0.5, 1.0, 2.0],
                vec![1.5, 0.25, 3.0],
                vec![2.5, 1.75, 0.75],
            ]);
            let mut e = WeightedEstimator::new(sigma);
            let mut arm0 = Vec::new();
            for (y, deployed) in samples {
                e.observe(deployed, &[y, 0.0, 0.0]);
                arm0.push(y);
            }
            let lo = arm0.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = arm0.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(e.mean(0) >= lo - 1e-9 && e.mean(0) <= hi + 1e-9);
        }
    }
}
