//! The alternative-environment divergence Φ (Eq 2) and the optimal
//! deployment proportions α* (Eq 3).
//!
//! For Gaussian rewards the inner infimum of Eq (2) has a closed form
//! (derived in Appendix A.2.3 of the paper): writing the aggregate precision
//! an allocation `α` buys for arm `j` as
//!
//! ```text
//! w_j(α) = Σ_i α_i / σ²_{ij}
//! ```
//!
//! the cheapest alternative environment swaps the best arm `k*` with some
//! challenger `k`, giving
//!
//! ```text
//! Φ(ν, α) = ½ · min_{k ≠ k*}  w_{k*} w_k Δ_k² / (w_{k*} + w_k),
//! Δ_k = ν_{k*} − ν_k.
//! ```
//!
//! `Φ` is concave in `α` (a minimum of concave functions of the affine
//! `w_j(α)`), so `α*` is found by exponentiated-gradient ascent on the
//! probability simplex using a supergradient of the active minimum.

use crate::env::SideInfo;

/// Index of the best arm of `nu` (lowest index on ties).
pub fn best_arm(nu: &[f64]) -> usize {
    nu.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .expect("non-empty mean vector")
}

/// True if `nu` has a unique maximizer.
pub fn has_unique_best(nu: &[f64]) -> bool {
    let b = best_arm(nu);
    nu.iter().enumerate().all(|(i, &v)| i == b || v < nu[b])
}

/// Aggregate precisions `w_j = Σ_i alloc_i / σ²_{ij}`. `alloc` may be a
/// simplex point (for Φ(ν, α)) or raw deployment counts (for the
/// information level Z_t = Φ(ν̂, T(t)) — Φ is 1-homogeneous in the
/// allocation, so both uses share this code).
fn precisions(alloc: &[f64], sigma: &SideInfo) -> Vec<f64> {
    let k = sigma.k();
    (0..k).map(|j| (0..k).map(|i| alloc[i] / sigma.var(i, j)).sum()).collect()
}

/// Φ(ν, alloc) for an arbitrary non-negative allocation (see Eq 2).
/// Returns 0 when `nu` has no unique best arm (no information can separate
/// exact ties).
pub fn phi(nu: &[f64], alloc: &[f64], sigma: &SideInfo) -> f64 {
    assert_eq!(nu.len(), sigma.k(), "nu dimension mismatch");
    assert_eq!(alloc.len(), sigma.k(), "allocation dimension mismatch");
    if !has_unique_best(nu) {
        return 0.0;
    }
    let star = best_arm(nu);
    let w = precisions(alloc, sigma);
    let mut min = f64::INFINITY;
    for k in 0..nu.len() {
        if k == star {
            continue;
        }
        let delta = nu[star] - nu[k];
        let denom = w[star] + w[k];
        let val = if denom == 0.0 { 0.0 } else { 0.5 * w[star] * w[k] * delta * delta / denom };
        min = min.min(val);
    }
    if min.is_finite() {
        min
    } else {
        // Single-arm problem: nothing to distinguish; infinite information.
        f64::INFINITY
    }
}

/// The optimal deployment distribution α*(ν, Σ) of Eq (3), computed by
/// exponentiated-gradient ascent (`iters` steps). Returns the uniform
/// distribution when `nu` has no unique best arm.
pub fn optimal_alpha(nu: &[f64], sigma: &SideInfo, iters: usize) -> Vec<f64> {
    let k = sigma.k();
    assert_eq!(nu.len(), k, "nu dimension mismatch");
    let uniform = vec![1.0 / k as f64; k];
    if k == 1 || !has_unique_best(nu) {
        return uniform;
    }
    let star = best_arm(nu);
    let mut alpha = uniform.clone();

    for step in 0..iters.max(1) {
        let w = precisions(&alpha, sigma);
        // Identify the (near-)active challengers of the min.
        let mut vals = Vec::with_capacity(k - 1);
        let mut fmin = f64::INFINITY;
        for c in 0..k {
            if c == star {
                continue;
            }
            let delta = nu[star] - nu[c];
            let v = 0.5 * w[star] * w[c] * delta * delta / (w[star] + w[c]);
            vals.push((c, v));
            fmin = fmin.min(v);
        }
        let tol = fmin * 1e-6 + 1e-18;
        // Supergradient: average the gradients of active challengers.
        let mut grad = vec![0.0; k];
        let mut active = 0usize;
        for &(c, v) in &vals {
            if v <= fmin + tol {
                active += 1;
                let delta = nu[star] - nu[c];
                let denom = w[star] + w[c];
                let ga = (w[c] / denom) * (w[c] / denom); // ∂/∂w_star
                let gb = (w[star] / denom) * (w[star] / denom); // ∂/∂w_c
                for (i, g) in grad.iter_mut().enumerate() {
                    *g += 0.5 * delta * delta * (ga / sigma.var(i, star) + gb / sigma.var(i, c));
                }
            }
        }
        if active > 0 {
            grad.iter_mut().for_each(|g| *g /= active as f64);
        }
        // Exponentiated-gradient step with decaying rate; normalize the
        // gradient so the rate is scale-free.
        let gmax = grad.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        if gmax <= 0.0 {
            break; // Φ locally flat in α (e.g. uniform Σ): any α is optimal.
        }
        let eta = 2.0 / (1.0 + step as f64).sqrt();
        let mut sum = 0.0;
        for (a, g) in alpha.iter_mut().zip(&grad) {
            *a *= (eta * g / gmax).exp();
            sum += *a;
        }
        alpha.iter_mut().for_each(|a| *a /= sum);
    }
    alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_zero_on_ties() {
        let sigma = SideInfo::uniform(3, 1.0);
        assert_eq!(phi(&[0.5, 0.5, 0.1], &[1.0, 1.0, 1.0], &sigma), 0.0);
        assert!(!has_unique_best(&[0.5, 0.5, 0.1]));
    }

    #[test]
    fn phi_closed_form_two_arms() {
        // K=2, uniform σ²=1, α=(0.5,0.5): w = (1,1); Δ=0.2.
        // Φ = ½·(1·1·0.04)/2 = 0.01.
        let sigma = SideInfo::uniform(2, 1.0);
        let v = phi(&[0.7, 0.5], &[0.5, 0.5], &sigma);
        assert!((v - 0.01).abs() < 1e-12, "{v}");
    }

    #[test]
    fn phi_scales_linearly_in_counts() {
        let sigma = SideInfo::two_level(3, 0.2, 0.7);
        let nu = [0.6, 0.5, 0.3];
        let a = phi(&nu, &[1.0, 2.0, 3.0], &sigma);
        let b = phi(&nu, &[2.0, 4.0, 6.0], &sigma);
        assert!((b - 2.0 * a).abs() < 1e-9, "Φ must be 1-homogeneous");
    }

    #[test]
    fn phi_picks_hardest_challenger() {
        // The challenger with the smallest gap dominates the min.
        let sigma = SideInfo::uniform(3, 1.0);
        let alloc = [1.0, 1.0, 1.0];
        let close = phi(&[0.6, 0.59, 0.0], &alloc, &sigma);
        let far = phi(&[0.6, 0.3, 0.0], &alloc, &sigma);
        assert!(close < far);
    }

    #[test]
    fn phi_single_arm_is_infinite() {
        let sigma = SideInfo::uniform(1, 1.0);
        assert!(phi(&[0.5], &[1.0], &sigma).is_infinite());
    }

    #[test]
    fn optimal_alpha_is_simplex_point() {
        let sigma = SideInfo::two_level(4, 0.1, 0.5);
        let a = optimal_alpha(&[0.6, 0.5, 0.4, 0.3], &sigma, 300);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&x| x >= 0.0));
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_alpha_uniform_on_ties() {
        let sigma = SideInfo::uniform(3, 1.0);
        let a = optimal_alpha(&[0.5, 0.5, 0.2], &sigma, 100);
        assert!(a.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-9));
    }

    #[test]
    fn optimal_alpha_improves_phi_over_uniform() {
        // Strongly asymmetric side info: deploying arm 0 is very noisy for
        // everyone; the optimizer should shift mass away from it.
        let sigma =
            SideInfo::new(vec![vec![4.0, 4.0, 4.0], vec![0.04, 0.04, 0.04], vec![0.04, 0.04, 0.04]]);
        let nu = [0.6, 0.5, 0.4];
        let k = 3;
        let uniform = vec![1.0 / k as f64; k];
        let a = optimal_alpha(&nu, &sigma, 500);
        let phi_u = phi(&nu, &uniform, &sigma);
        let phi_a = phi(&nu, &a, &sigma);
        assert!(phi_a >= phi_u - 1e-12, "optimized {phi_a} < uniform {phi_u}");
        assert!(a[0] < 0.2, "noisy arm should be under-deployed, got {:?}", a);
    }

    #[test]
    fn optimal_alpha_symmetric_two_arms_balanced() {
        // Symmetric two-arm problem with diagonal-dominant Σ: deploying
        // either arm is equally informative, so α* ≈ (½, ½).
        let sigma = SideInfo::two_level(2, 0.1, 0.4);
        let a = optimal_alpha(&[0.6, 0.4], &sigma, 800);
        assert!((a[0] - 0.5).abs() < 0.05, "{a:?}");
    }

    #[test]
    fn uniform_sigma_makes_phi_allocation_free() {
        // With uniform Σ every allocation yields identical w, hence equal Φ —
        // the "side information ⇒ K-free learning" intuition in its extreme.
        let sigma = SideInfo::uniform(5, 0.3);
        let nu = [0.5, 0.45, 0.4, 0.35, 0.3];
        let a1 = phi(&nu, &[1.0, 0.0, 0.0, 0.0, 0.0], &sigma);
        let a2 = phi(&nu, &[0.2, 0.2, 0.2, 0.2, 0.2], &sigma);
        assert!((a1 - a2).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For two arms the optimizer must match a fine grid search over the
        /// 1-D simplex within tolerance, for arbitrary positive variance
        /// matrices.
        #[test]
        fn two_arm_alpha_matches_grid_search(
            s11 in 0.01f64..1.0, s12 in 0.01f64..1.0,
            s21 in 0.01f64..1.0, s22 in 0.01f64..1.0,
            gap in 0.05f64..0.5,
        ) {
            let sigma = SideInfo::new(vec![vec![s11, s12], vec![s21, s22]]);
            let nu = [0.5 + gap, 0.5];
            let a = optimal_alpha(&nu, &sigma, 600);
            let phi_opt = phi(&nu, &a, &sigma);
            // Fine grid search.
            let mut best = 0.0f64;
            for i in 0..=1000 {
                let a0 = i as f64 / 1000.0;
                let v = phi(&nu, &[a0, 1.0 - a0], &sigma);
                best = best.max(v);
            }
            prop_assert!(
                phi_opt >= best * 0.99 - 1e-12,
                "optimizer {} vs grid best {}", phi_opt, best
            );
        }

        /// Φ is non-negative and finite for K ≥ 2 with positive allocations.
        #[test]
        fn phi_nonnegative(nu in proptest::collection::vec(0.0f64..1.0, 2..6)) {
            let k = nu.len();
            let sigma = SideInfo::two_level(k, 0.2, 0.5);
            let alloc = vec![1.0; k];
            let v = phi(&nu, &alloc, &sigma);
            prop_assert!(v >= 0.0);
            prop_assert!(v.is_finite());
        }

        /// α* always lies on the simplex and never decreases Φ versus the
        /// uniform allocation (up to optimizer tolerance).
        #[test]
        fn alpha_star_at_least_uniform(mut nu in proptest::collection::vec(0.0f64..1.0, 2..5)) {
            // Ensure a unique best arm so the optimizer has a target.
            nu[0] += 1.0;
            let k = nu.len();
            let sigma = SideInfo::two_level(k, 0.15, 0.45);
            let a = optimal_alpha(&nu, &sigma, 400);
            prop_assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            let uniform = vec![1.0 / k as f64; k];
            let pu = phi(&nu, &uniform, &sigma);
            let pa = phi(&nu, &a, &sigma);
            prop_assert!(pa >= pu * 0.95 - 1e-9, "optimized {} < uniform {}", pa, pu);
        }
    }
}
