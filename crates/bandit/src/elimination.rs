//! Successive elimination — a simple pure-exploration baseline.
//!
//! Plays all surviving arms round-robin and eliminates any arm whose upper
//! confidence bound falls below the best lower confidence bound. Included as
//! a sanity baseline for the bandit experiments (it is δ-sound but its
//! sample complexity scales with K even more steeply than Track-and-Stop).

use serde::{Deserialize, Serialize};

/// Successive-elimination state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuccessiveElimination {
    delta: f64,
    sigma: f64,
    sums: Vec<f64>,
    counts: Vec<u64>,
    alive: Vec<bool>,
    rounds: usize,
    cursor: usize,
    max_rounds: usize,
}

impl SuccessiveElimination {
    /// `k` arms with (sub-)Gaussian parameter `sigma`, failure prob `delta`.
    pub fn new(k: usize, sigma: f64, delta: f64, max_rounds: usize) -> Self {
        assert!(k > 0, "at least one arm required");
        assert!(sigma > 0.0, "sigma must be positive");
        assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
        Self {
            delta,
            sigma,
            sums: vec![0.0; k],
            counts: vec![0; k],
            alive: vec![true; k],
            rounds: 0,
            cursor: 0,
            max_rounds,
        }
    }

    /// Whether one arm remains (or the budget is exhausted).
    pub fn finished(&self) -> bool {
        self.alive.iter().filter(|&&a| a).count() <= 1
            || (self.max_rounds > 0 && self.rounds >= self.max_rounds)
    }

    /// Rounds (arm pulls) so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of arms still alive.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// The next arm to pull (round-robin over survivors).
    pub fn next_arm(&mut self) -> usize {
        assert!(!self.finished(), "already finished");
        loop {
            let arm = self.cursor;
            self.cursor = (self.cursor + 1) % self.alive.len();
            if self.alive[arm] {
                return arm;
            }
        }
    }

    /// Confidence radius for an arm pulled `n` times.
    fn radius(&self, n: u64) -> f64 {
        if n == 0 {
            return f64::INFINITY;
        }
        let k = self.alive.len() as f64;
        let n = n as f64;
        // Anytime bound: σ √(2 ln(4 K n² / δ) / n).
        self.sigma * (2.0 * (4.0 * k * n * n / self.delta).ln() / n).sqrt()
    }

    /// Ingests the reward of `arm` and eliminates dominated arms.
    pub fn observe(&mut self, arm: usize, reward: f64) {
        self.sums[arm] += reward;
        self.counts[arm] += 1;
        self.rounds += 1;

        // Eliminate after each full sweep (all survivors equally sampled).
        let min_count = self
            .alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| self.counts[i])
            .min()
            .unwrap_or(0);
        if min_count == 0 {
            return;
        }
        let bounds: Vec<Option<(f64, f64)>> = (0..self.alive.len())
            .map(|i| {
                if !self.alive[i] {
                    return None;
                }
                let mean = self.sums[i] / self.counts[i] as f64;
                let r = self.radius(self.counts[i]);
                Some((mean - r, mean + r))
            })
            .collect();
        let best_lcb = bounds.iter().flatten().map(|&(l, _)| l).fold(f64::NEG_INFINITY, f64::max);
        for (i, b) in bounds.iter().enumerate() {
            if let Some((_, ucb)) = b {
                if *ucb < best_lcb {
                    self.alive[i] = false;
                }
            }
        }
    }

    /// The best surviving arm (highest empirical mean among survivors).
    pub fn recommend(&self) -> usize {
        (0..self.alive.len())
            .filter(|&i| self.alive[i] && self.counts[i] > 0)
            .max_by(|&a, &b| {
                let ma = self.sums[a] / self.counts[a] as f64;
                let mb = self.sums[b] / self.counts[b] as f64;
                ma.partial_cmp(&mb).unwrap()
            })
            .unwrap_or(0)
    }

    /// Runs to completion against a scalar reward oracle.
    pub fn run<F>(mut self, mut pull: F) -> (usize, usize)
    where
        F: FnMut(usize) -> f64,
    {
        while !self.finished() {
            let arm = self.next_arm();
            let r = pull(arm);
            self.observe(arm, r);
        }
        (self.recommend(), self.rounds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn finds_clear_best() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mu = [0.9, 0.2, 0.1];
        let se = SuccessiveElimination::new(3, 0.1, 0.05, 100_000);
        let (arm, _) = se.run(|a| {
            let z: f64 = rng.sample(rand_distr::StandardNormal);
            mu[a] + 0.1 * z
        });
        assert_eq!(arm, 0);
    }

    #[test]
    fn eliminates_bad_arms_early() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mu = [0.9, 0.1, 0.1, 0.1];
        let mut se = SuccessiveElimination::new(4, 0.05, 0.05, 100_000);
        let mut pulls_at_elimination = None;
        while !se.finished() {
            let a = se.next_arm();
            let z: f64 = rng.sample(rand_distr::StandardNormal);
            se.observe(a, mu[a] + 0.05 * z);
            if se.alive_count() < 4 && pulls_at_elimination.is_none() {
                pulls_at_elimination = Some(se.rounds());
            }
        }
        assert!(pulls_at_elimination.unwrap() < 1000);
    }

    #[test]
    fn budget_terminates_hard_instances() {
        let se = SuccessiveElimination::new(2, 1.0, 0.05, 100);
        let (_, rounds) = se.run(|_| 0.5); // identical arms: never separable
        assert_eq!(rounds, 100);
    }

    #[test]
    fn single_arm_finishes_immediately() {
        let se = SuccessiveElimination::new(1, 0.1, 0.05, 0);
        assert!(se.finished());
        assert_eq!(se.recommend(), 0);
    }
}
