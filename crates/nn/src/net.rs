//! One-hidden-layer perceptron with Adam training.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Output-layer nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputActivation {
    /// Logistic sigmoid — outputs in (0, 1); used for probability heads
    /// (the cross-expert predictors output conditional hit probabilities).
    Sigmoid,
    /// Identity — unbounded regression outputs.
    Identity,
}

/// Training hyper-parameters for [`Mlp::train`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// Mini-batch size (clamped to the data set size).
    pub batch_size: usize,
    /// L2 weight decay coefficient.
    pub l2: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 200, learning_rate: 0.01, batch_size: 32, l2: 1e-5, seed: 0 }
    }
}

/// A dense `input → tanh(hidden) → output` network.
///
/// Weights are stored row-major: `w1[h * n_in + i]` connects input `i` to
/// hidden unit `h`; `w2[o * n_hidden + h]` connects hidden `h` to output `o`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    n_in: usize,
    n_hidden: usize,
    n_out: usize,
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: Vec<f64>,
    output: OutputActivation,
}

impl Mlp {
    /// Creates a network with Xavier-uniform initial weights.
    pub fn new(n_in: usize, n_hidden: usize, n_out: usize, output: OutputActivation, seed: u64) -> Self {
        assert!(n_in > 0 && n_hidden > 0 && n_out > 0, "layer sizes must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let lim1 = (6.0 / (n_in + n_hidden) as f64).sqrt();
        let lim2 = (6.0 / (n_hidden + n_out) as f64).sqrt();
        Self {
            n_in,
            n_hidden,
            n_out,
            w1: (0..n_in * n_hidden).map(|_| rng.gen_range(-lim1..lim1)).collect(),
            b1: vec![0.0; n_hidden],
            w2: (0..n_hidden * n_out).map(|_| rng.gen_range(-lim2..lim2)).collect(),
            b2: vec![0.0; n_out],
            output,
        }
    }

    /// Input dimensionality.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Hidden-layer width.
    pub fn n_hidden(&self) -> usize {
        self.n_hidden
    }

    /// Output dimensionality.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_in, "input dimension mismatch");
        let hidden = self.hidden_activations(x);
        self.output_from_hidden(&hidden)
    }

    fn hidden_activations(&self, x: &[f64]) -> Vec<f64> {
        (0..self.n_hidden)
            .map(|h| {
                let mut z = self.b1[h];
                let row = &self.w1[h * self.n_in..(h + 1) * self.n_in];
                for (w, &xi) in row.iter().zip(x) {
                    z += w * xi;
                }
                z.tanh()
            })
            .collect()
    }

    fn output_from_hidden(&self, hidden: &[f64]) -> Vec<f64> {
        (0..self.n_out)
            .map(|o| {
                let mut z = self.b2[o];
                let row = &self.w2[o * self.n_hidden..(o + 1) * self.n_hidden];
                for (w, &h) in row.iter().zip(hidden) {
                    z += w * h;
                }
                match self.output {
                    OutputActivation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
                    OutputActivation::Identity => z,
                }
            })
            .collect()
    }

    /// Mean squared error over a data set.
    pub fn mse(&self, data: &[(Vec<f64>, Vec<f64>)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (x, y) in data {
            let out = self.forward(x);
            total += out.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
        }
        total / data.len() as f64
    }

    /// Trains with mini-batch Adam on MSE loss. Returns the final-epoch
    /// average loss.
    pub fn train(&mut self, data: &[(Vec<f64>, Vec<f64>)], cfg: &TrainConfig) -> f64 {
        assert!(!data.is_empty(), "cannot train on an empty data set");
        for (x, y) in data {
            assert_eq!(x.len(), self.n_in, "input dimension mismatch");
            assert_eq!(y.len(), self.n_out, "target dimension mismatch");
        }
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let batch = cfg.batch_size.max(1).min(data.len());
        let nparams = self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len();
        let mut m = vec![0.0; nparams];
        let mut v = vec![0.0; nparams];
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut step = 0usize;
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut last_loss = f64::INFINITY;

        for _ in 0..cfg.epochs.max(1) {
            // Fisher–Yates shuffle.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                let mut grad = vec![0.0; nparams];
                for &idx in chunk {
                    let (x, y) = &data[idx];
                    epoch_loss += self.accumulate_gradient(x, y, &mut grad);
                }
                let scale = 1.0 / chunk.len() as f64;
                step += 1;
                let bc1 = 1.0 - beta1.powi(step as i32);
                let bc2 = 1.0 - beta2.powi(step as i32);
                self.apply_adam(&grad, scale, cfg, &mut m, &mut v, beta1, beta2, eps, bc1, bc2);
            }
            last_loss = epoch_loss / data.len() as f64;
        }
        last_loss
    }

    /// Adds ∂MSE/∂θ for one sample into `grad` (laid out w1|b1|w2|b2) and
    /// returns the sample's squared error.
    fn accumulate_gradient(&self, x: &[f64], y: &[f64], grad: &mut [f64]) -> f64 {
        let hidden = self.hidden_activations(x);
        let out = self.output_from_hidden(&hidden);

        // dL/dz_o for L = Σ (out − y)² (unnormalized per-sample loss).
        let delta_out: Vec<f64> = out
            .iter()
            .zip(y)
            .map(|(&o, &t)| {
                let dl_do = 2.0 * (o - t);
                match self.output {
                    OutputActivation::Sigmoid => dl_do * o * (1.0 - o),
                    OutputActivation::Identity => dl_do,
                }
            })
            .collect();

        let (w1n, b1n, w2n) = (self.w1.len(), self.b1.len(), self.w2.len());
        // w2 / b2 gradients.
        for o in 0..self.n_out {
            for h in 0..self.n_hidden {
                grad[w1n + b1n + o * self.n_hidden + h] += delta_out[o] * hidden[h];
            }
            grad[w1n + b1n + w2n + o] += delta_out[o];
        }
        // Back-prop into the hidden layer.
        for h in 0..self.n_hidden {
            let mut dh = 0.0;
            for (o, d) in delta_out.iter().enumerate() {
                dh += d * self.w2[o * self.n_hidden + h];
            }
            let dz = dh * (1.0 - hidden[h] * hidden[h]); // tanh'
            for i in 0..self.n_in {
                grad[h * self.n_in + i] += dz * x[i];
            }
            grad[w1n + h] += dz;
        }

        out.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_adam(
        &mut self,
        grad: &[f64],
        scale: f64,
        cfg: &TrainConfig,
        m: &mut [f64],
        v: &mut [f64],
        beta1: f64,
        beta2: f64,
        eps: f64,
        bc1: f64,
        bc2: f64,
    ) {
        let (w1n, b1n, w2n) = (self.w1.len(), self.b1.len(), self.w2.len());
        let params = self
            .w1
            .iter_mut()
            .chain(self.b1.iter_mut())
            .chain(self.w2.iter_mut())
            .chain(self.b2.iter_mut());
        for (idx, p) in params.enumerate() {
            // Weight decay applies to weights only, not biases.
            let is_bias = (idx >= w1n && idx < w1n + b1n) || idx >= w1n + b1n + w2n;
            let g = grad[idx] * scale + if is_bias { 0.0 } else { cfg.l2 * *p };
            m[idx] = beta1 * m[idx] + (1.0 - beta1) * g;
            v[idx] = beta2 * v[idx] + (1.0 - beta2) * g * g;
            let mhat = m[idx] / bc1;
            let vhat = v[idx] / bc2;
            *p -= cfg.learning_rate * mhat / (vhat.sqrt() + eps);
        }
    }

    /// Serializes the model to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Restores a model from [`Mlp::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(3, 5, 2, OutputActivation::Sigmoid, 1);
        let out = net.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|&o| (0.0..=1.0).contains(&o)));
    }

    #[test]
    fn identity_outputs_unbounded() {
        let net = Mlp::new(2, 4, 1, OutputActivation::Identity, 2);
        let out = net.forward(&[100.0, -50.0]);
        assert!(out[0].is_finite());
    }

    #[test]
    fn learns_linear_function() {
        // y = 0.3 x0 − 0.7 x1 + 0.1
        let data: Vec<(Vec<f64>, Vec<f64>)> = (0..200)
            .map(|i| {
                let x0 = (i % 20) as f64 / 10.0 - 1.0;
                let x1 = (i / 20) as f64 / 5.0 - 1.0;
                (vec![x0, x1], vec![0.3 * x0 - 0.7 * x1 + 0.1])
            })
            .collect();
        let mut net = Mlp::new(2, 8, 1, OutputActivation::Identity, 3);
        let loss = net.train(&data, &TrainConfig { epochs: 500, ..Default::default() });
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn learns_xor() {
        let data: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![0.0, 0.0], vec![0.0]),
            (vec![0.0, 1.0], vec![1.0]),
            (vec![1.0, 0.0], vec![1.0]),
            (vec![1.0, 1.0], vec![0.0]),
        ];
        let mut net = Mlp::new(2, 8, 1, OutputActivation::Sigmoid, 4);
        net.train(
            &data,
            &TrainConfig { epochs: 3000, learning_rate: 0.02, batch_size: 4, ..Default::default() },
        );
        for (x, y) in &data {
            let p = net.forward(x)[0];
            assert!((p - y[0]).abs() < 0.2, "xor({x:?}) = {p}, want {}", y[0]);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let net = Mlp::new(3, 4, 2, OutputActivation::Sigmoid, 5);
        let x = vec![0.5, -0.3, 0.8];
        let y = vec![0.2, 0.9];
        let nparams = net.w1.len() + net.b1.len() + net.w2.len() + net.b2.len();
        let mut analytic = vec![0.0; nparams];
        net.accumulate_gradient(&x, &y, &mut analytic);

        let loss_of = |n: &Mlp| -> f64 {
            let out = n.forward(&x);
            out.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        let eps = 1e-6;
        for (idx, a) in analytic.iter().enumerate() {
            let mut plus = net.clone();
            let mut minus = net.clone();
            {
                let p = param_mut(&mut plus, idx);
                *p += eps;
            }
            {
                let p = param_mut(&mut minus, idx);
                *p -= eps;
            }
            let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!((numeric - a).abs() < 1e-5, "param {idx}: numeric {numeric} vs analytic {a}");
        }
    }

    fn param_mut(net: &mut Mlp, idx: usize) -> &mut f64 {
        let (w1n, b1n, w2n) = (net.w1.len(), net.b1.len(), net.w2.len());
        if idx < w1n {
            &mut net.w1[idx]
        } else if idx < w1n + b1n {
            &mut net.b1[idx - w1n]
        } else if idx < w1n + b1n + w2n {
            &mut net.w2[idx - w1n - b1n]
        } else {
            &mut net.b2[idx - w1n - b1n - w2n]
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data: Vec<(Vec<f64>, Vec<f64>)> =
            (0..50).map(|i| (vec![i as f64 / 50.0], vec![(i % 2) as f64])).collect();
        let mut a = Mlp::new(1, 4, 1, OutputActivation::Sigmoid, 7);
        let mut b = Mlp::new(1, 4, 1, OutputActivation::Sigmoid, 7);
        a.train(&data, &TrainConfig::default());
        b.train(&data, &TrainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn json_roundtrip_preserves_model() {
        let net = Mlp::new(4, 6, 3, OutputActivation::Sigmoid, 8);
        let back = Mlp::from_json(&net.to_json()).unwrap();
        // JSON float formatting may lose the last ULP; require functional
        // equivalence rather than bitwise equality.
        let a = net.forward(&[0.1, 0.2, 0.3, 0.4]);
        let b = back.forward(&[0.1, 0.2, 0.3, 0.4]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_rejects_wrong_dim() {
        Mlp::new(2, 2, 1, OutputActivation::Identity, 1).forward(&[1.0]);
    }

    #[test]
    fn mse_decreases_with_training() {
        let data: Vec<(Vec<f64>, Vec<f64>)> = (0..100)
            .map(|i| {
                let x = i as f64 / 100.0;
                (vec![x], vec![(3.0 * x).sin() * 0.4 + 0.5])
            })
            .collect();
        let mut net = Mlp::new(1, 10, 1, OutputActivation::Sigmoid, 9);
        let before = net.mse(&data);
        net.train(&data, &TrainConfig { epochs: 400, ..Default::default() });
        let after = net.mse(&data);
        assert!(after < before * 0.5, "before {before}, after {after}");
    }
}
