#![warn(missing_docs)]

//! # darwin-nn
//!
//! Minimal dense neural networks, implemented from scratch (no BLAS, no
//! framework). Darwin's cross-expert predictors are deliberately tiny — "we
//! train a 1-layer fully connected neural network M_ij for each ordered pair
//! of experts" (§4.1) — so a small, dependency-free MLP with manually derived
//! backpropagation is a faithful and auditable substrate.
//!
//! The crate provides:
//!
//! * [`Mlp`] — a one-hidden-layer perceptron with tanh hidden units and
//!   either sigmoid outputs (probabilities: the cross-expert predictors) or
//!   identity outputs (regression: the DirectMapping baseline);
//! * [`TrainConfig`] / [`Mlp::train`] — mini-batch Adam on mean squared
//!   error;
//! * serde persistence for trained models.
//!
//! ```
//! use darwin_nn::{Mlp, OutputActivation, TrainConfig};
//!
//! // Learn XOR (sanity check that the net can fit non-linear functions).
//! let data: Vec<(Vec<f64>, Vec<f64>)> = vec![
//!     (vec![0., 0.], vec![0.]), (vec![0., 1.], vec![1.]),
//!     (vec![1., 0.], vec![1.]), (vec![1., 1.], vec![0.]),
//! ];
//! let mut net = Mlp::new(2, 8, 1, OutputActivation::Sigmoid, 42);
//! net.train(&data, &TrainConfig { epochs: 2000, ..TrainConfig::default() });
//! assert!(net.forward(&[0., 1.])[0] > 0.5);
//! assert!(net.forward(&[1., 1.])[0] < 0.5);
//! ```

pub mod net;

pub use net::{Mlp, OutputActivation, TrainConfig};
