//! Criterion benchmark of the streaming feature extractor — the online
//! warm-up phase's per-request cost (§6.4 reports the feature-collection
//! stage as "lightweight").

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use darwin_features::FeatureExtractor;
use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

fn bench_extract(c: &mut Criterion) {
    let trace =
        TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 7)
            .generate(100_000);

    let mut g = c.benchmark_group("feature_extraction");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("paper_default_15_features", |b| {
        b.iter(|| {
            let mut fx = FeatureExtractor::paper_default();
            for r in &trace {
                fx.observe(r);
            }
            black_box(fx.features())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
