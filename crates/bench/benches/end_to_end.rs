//! Criterion benchmark of the end-to-end online loop: a full Darwin epoch
//! (warm-up → identification → deployment) against a static expert on the
//! same trace — the aggregate per-request overhead Darwin adds (§6.4 finds
//! it negligible and amortized).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use darwin::prelude::*;
use darwin_nn::TrainConfig;
use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
use std::sync::Arc;

fn bench_online_epoch(c: &mut Criterion) {
    let hoc = 8 * 1024 * 1024;
    let corpus: Vec<_> = (0..4)
        .map(|i| {
            TraceGenerator::new(
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 3.0),
                20 + i as u64,
            )
            .generate(30_000)
        })
        .collect();
    let offline = OfflineConfig {
        grid: darwin::ExpertGrid::new(vec![
            Expert::new(1, 20),
            Expert::new(1, 500),
            Expert::new(5, 20),
            Expert::new(5, 500),
        ]),
        hoc_bytes: hoc,
        nn_train: TrainConfig { epochs: 50, ..TrainConfig::default() },
        n_clusters: 2,
        feature_prefix_requests: 1_000,
        ..OfflineConfig::default()
    };
    let model = Arc::new(OfflineTrainer::new(offline).train(&corpus));
    let trace = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.4),
        99,
    )
    .generate(50_000);
    let online = OnlineConfig {
        epoch_requests: 50_000,
        warmup_requests: 1_000,
        round_requests: 500,
        ..OnlineConfig::default()
    };
    let cache =
        CacheConfig { hoc_bytes: hoc, dc_bytes: 512 * 1024 * 1024, ..CacheConfig::paper_default() };

    let mut g = c.benchmark_group("end_to_end");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("darwin_epoch", |b| {
        b.iter(|| black_box(darwin::run_darwin(&model, &online, &trace, &cache)).metrics)
    });
    g.bench_function("static_expert", |b| {
        b.iter(|| black_box(darwin::run_static(Expert::new(2, 100), &trace, &cache)))
    });
    g.finish();
}

criterion_group!(benches, bench_online_epoch);
criterion_main!(benches);
