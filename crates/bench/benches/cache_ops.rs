//! Criterion micro-benchmarks of the cache substrate: request-processing
//! throughput of the two-level server and of the HOC-only simulator, plus
//! the raw LRU store and frequency structures. These quantify the §6.4
//! claim that admission-policy logic imposes negligible per-request cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use darwin_cache::{
    BloomFilter, CacheConfig, CacheServer, EvictionKind, FrequencySketch, HocSim, Store, ThresholdPolicy,
};
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};

fn workload(n: usize) -> Trace {
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 42)
        .generate(n)
}

fn bench_cache_server(c: &mut Criterion) {
    let trace = workload(100_000);
    let mut g = c.benchmark_group("cache_server");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("two_level_process", |b| {
        b.iter(|| {
            let mut server = CacheServer::new(CacheConfig {
                hoc_bytes: 16 * 1024 * 1024,
                dc_bytes: 1024 * 1024 * 1024,
                ..CacheConfig::paper_default()
            });
            server.set_policy(ThresholdPolicy::new(2, 100 * 1024));
            black_box(server.process_trace(&trace))
        })
    });
    g.bench_function("hoc_only_process", |b| {
        b.iter(|| {
            let mut sim =
                HocSim::new(16 * 1024 * 1024, EvictionKind::Lru, ThresholdPolicy::new(2, 100 * 1024));
            black_box(sim.run_trace(&trace))
        })
    });
    g.finish();
}

fn bench_lru_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_store");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("insert_touch_evict", |b| {
        b.iter(|| {
            let mut s = Store::lru(1_000_000);
            for i in 0..100_000u64 {
                if !s.touch(i % 2_000) {
                    s.insert(i % 2_000, 997);
                }
            }
            black_box(s.len())
        })
    });
    g.finish();
}

fn bench_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("filters");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("bloom_insert", |b| {
        b.iter(|| {
            let mut f = BloomFilter::with_capacity(100_000);
            for i in 0..100_000u64 {
                f.insert(black_box(i));
            }
            black_box(f.inserted())
        })
    });
    g.bench_function("sketch_increment", |b| {
        b.iter(|| {
            let mut s = FrequencySketch::with_capacity(100_000);
            for i in 0..100_000u64 {
                s.increment(black_box(i % 10_000));
            }
            black_box(s.estimate(1))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache_server, bench_lru_store, bench_filters);
criterion_main!(benches);
