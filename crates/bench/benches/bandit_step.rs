//! Criterion benchmark of the bandit's per-round cost: the α* optimization
//! plus the stopping test — what the prototype runs "at the beginning of
//! each round … in parallel with the cache processing" (§5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use darwin_bandit::{oracle, GaussianEnv, SideInfo, TasConfig, TrackAndStopSideInfo};

fn bench_alpha_star(c: &mut Criterion) {
    let mut g = c.benchmark_group("alpha_star");
    for &k in &[4usize, 8, 16, 36] {
        let sigma = SideInfo::two_level(k, 0.05, 0.1);
        let nu: Vec<f64> = (0..k).map(|i| 0.6 - 0.01 * i as f64).collect();
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(oracle::optimal_alpha(&nu, &sigma, 150)))
        });
    }
    g.finish();
}

fn bench_full_round(c: &mut Criterion) {
    let k = 10;
    let sigma = SideInfo::two_level(k, 0.05, 0.1);
    let mu: Vec<f64> = (0..k).map(|i| 0.6 - 0.02 * i as f64).collect();
    c.bench_function("bandit_full_round_k10", |b| {
        b.iter(|| {
            let mut env = GaussianEnv::new(mu.clone(), sigma.clone(), 1);
            let cfg = TasConfig { max_rounds: 30, stability_rounds: None, ..TasConfig::default() };
            let mut tas = TrackAndStopSideInfo::new(sigma.clone(), 0.05, cfg);
            // A fixed number of rounds: selection + observation + stop test.
            for _ in 0..20 {
                if tas.finished() {
                    break;
                }
                let arm = tas.next_arm();
                let y = env.pull(arm);
                tas.observe(arm, &y);
            }
            black_box(tas.recommend())
        })
    });
}

criterion_group!(benches, bench_alpha_star, bench_full_round);
criterion_main!(benches);
