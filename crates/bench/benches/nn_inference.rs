//! Criterion benchmark of cross-expert predictor inference — the cost of
//! generating one fictitious sample, and of a whole round's worth (K−1
//! predictions). §6.4's memory/CPU discussion hinges on these being cheap.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use darwin_nn::{Mlp, OutputActivation, TrainConfig};

fn bench_inference(c: &mut Criterion) {
    // Paper-shaped predictor: 22 inputs (15 features + 7 size buckets),
    // small hidden layer, 2 conditional-probability outputs.
    let net = Mlp::new(22, 8, 2, OutputActivation::Sigmoid, 3);
    let x: Vec<f64> = (0..22).map(|i| (i as f64 / 22.0) - 0.5).collect();

    let mut g = c.benchmark_group("predictor");
    g.bench_function("single_forward", |b| b.iter(|| black_box(net.forward(black_box(&x)))));
    g.throughput(Throughput::Elements(35));
    g.bench_function("round_of_35_predictions", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..35 {
                acc += net.forward(black_box(&x))[0];
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    let data: Vec<(Vec<f64>, Vec<f64>)> = (0..50)
        .map(|i| {
            let x: Vec<f64> = (0..22).map(|j| ((i * j) % 13) as f64 / 13.0).collect();
            (x, vec![(i % 2) as f64, ((i / 2) % 2) as f64])
        })
        .collect();
    c.bench_function("train_one_predictor_50x100", |b| {
        b.iter(|| {
            let mut net = Mlp::new(22, 8, 2, OutputActivation::Sigmoid, 5);
            black_box(net.train(&data, &TrainConfig { epochs: 100, ..TrainConfig::default() }))
        })
    });
}

criterion_group!(benches, bench_inference, bench_training);
criterion_main!(benches);
