//! Figure 2: OHR (and disk-write) grids over (f, s) for different traces.
//!
//! Paper expectations:
//! * 2a/2b — two mixed-traffic windows have *different* optimal (f, s), and
//!   deploying one window's optimum on the other loses OHR;
//! * 2c — the Image class optimum sits at high f / small s (paper: f=5,
//!   s=20 KB);
//! * 2d — the Download class optimum sits at low f / large s (paper: f=1,
//!   s=5 MB), and 2e — its disk-write-optimal s differs from the
//!   OHR-optimal one.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin_cache::{EvictionKind, HocSim, ThresholdPolicy};
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::path::Path;

/// The motivation grid is wider than the evaluation grid: it includes f=1
/// and multi-MB size thresholds so the Download optimum is expressible.
fn motivation_grid() -> (Vec<u32>, Vec<u64>) {
    let fs = vec![1u32, 2, 3, 4, 5, 6, 7];
    let ss_kb = vec![10u64, 20, 50, 100, 500, 1000, 5000, 10000];
    (fs, ss_kb)
}

struct GridResult {
    /// (f, s_kb, ohr, hoc_miss_bytes_per_request)
    cells: Vec<(u32, u64, f64, f64)>,
}

impl GridResult {
    fn best_by_ohr(&self) -> (u32, u64, f64) {
        let c = self
            .cells
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        (c.0, c.1, c.2)
    }

    fn best_by_disk_write(&self) -> (u32, u64, f64) {
        let c = self
            .cells
            .iter()
            .min_by(|a, b| a.3.partial_cmp(&b.3).unwrap())
            .unwrap();
        (c.0, c.1, c.3)
    }

    fn ohr_at(&self, f: u32, s_kb: u64) -> f64 {
        self.cells
            .iter()
            .find(|c| c.0 == f && c.1 == s_kb)
            .map(|c| c.2)
            .expect("cell in grid")
    }
}

fn sweep(trace: &Trace, hoc_bytes: u64) -> GridResult {
    let (fs, ss) = motivation_grid();
    let mut cells = Vec::new();
    for &f in &fs {
        for &s in &ss {
            let mut sim =
                HocSim::new(hoc_bytes, EvictionKind::Lru, ThresholdPolicy::new(f, s * 1024));
            let m = sim.run_trace(trace);
            cells.push((f, s, m.hoc_ohr(), m.hoc_miss_bytes_per_request()));
        }
    }
    GridResult { cells }
}

/// Runs the Fig 2 family and writes `fig2*.csv`.
pub fn run(scale: &Scale, out: &Path) {
    let hoc = scale.hoc_bytes();
    // The motivation grids use the paper's actual window length (2 M
    // requests): high-f admission only pays off once an object's 6th+
    // requests arrive, so short windows would bias every grid toward f=1.
    // This experiment needs no training, so the full length is affordable.
    let len = (scale.online_trace_len() * 7).max(2_000_000);

    // 2a/2b: two windows of a production-like mixed trace with different
    // class mixes (the load balancer changed the mix between windows).
    let win1 = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.8),
        2001,
    )
    .generate(len);
    let win2 = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.25),
        2002,
    )
    .generate(len);
    let image =
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), 2003).generate(len);
    let download =
        TraceGenerator::new(MixSpec::single(TrafficClass::download()), 2004).generate(len);

    let names = ["win1", "win2", "image", "download"];
    let grids: Vec<GridResult> =
        [&win1, &win2, &image, &download].iter().map(|t| sweep(t, hoc)).collect();

    let mut rep = Report::new(
        "fig2_grids",
        "Fig 2: HOC OHR / disk-write grids over (f, s)",
        &["trace", "f", "s_kb", "ohr", "miss_bytes_per_req"],
        out,
    );
    for (name, grid) in names.iter().zip(&grids) {
        for &(f, s, ohr, dw) in &grid.cells {
            rep.row(&[name.to_string(), f.to_string(), s.to_string(), f4(ohr), format!("{dw:.1}")]);
        }
    }
    rep.finish().expect("write fig2 csv");

    // Headline checks the paper narrates.
    let mut sum = Report::new(
        "fig2_summary",
        "Fig 2 summary: optima and cross-window degradation",
        &["quantity", "value"],
        out,
    );
    let (f1, s1, o1) = grids[0].best_by_ohr();
    let (f2, s2, o2) = grids[1].best_by_ohr();
    sum.row(&["win1 best (f,s_kb,ohr)".into(), format!("f{f1} s{s1} {}", f4(o1))]);
    sum.row(&["win2 best (f,s_kb,ohr)".into(), format!("f{f2} s{s2} {}", f4(o2))]);
    // Degradation from deploying the other window's optimum (paper: 1.19 % /
    // 7.83 % on its randomly picked windows).
    let w1_with_w2_best = grids[0].ohr_at(f2, s2);
    let w2_with_w1_best = grids[1].ohr_at(f1, s1);
    sum.row(&[
        "win1 loss with win2 optimum (%)".into(),
        format!("{:.2}", (o1 - w1_with_w2_best) / o1 * 100.0),
    ]);
    sum.row(&[
        "win2 loss with win1 optimum (%)".into(),
        format!("{:.2}", (o2 - w2_with_w1_best) / o2 * 100.0),
    ]);
    let (fi, si, oi) = grids[2].best_by_ohr();
    let (fd, sd, od) = grids[3].best_by_ohr();
    sum.row(&["image best (paper: f5 s20)".into(), format!("f{fi} s{si} {}", f4(oi))]);
    sum.row(&["download best (paper: f1 s5000)".into(), format!("f{fd} s{sd} {}", f4(od))]);
    let (fw, sw, dw) = grids[3].best_by_disk_write();
    sum.row(&[
        "download disk-write best (paper: f1 s10000)".into(),
        format!("f{fw} s{sw} {dw:.1} B/req"),
    ]);
    sum.finish().expect("write fig2 summary");
}
