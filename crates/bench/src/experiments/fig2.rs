//! Figure 2: OHR (and disk-write) grids over (f, s) for different traces.
//!
//! Paper expectations:
//! * 2a/2b — two mixed-traffic windows have *different* optimal (f, s), and
//!   deploying one window's optimum on the other loses OHR;
//! * 2c — the Image class optimum sits at high f / small s (paper: f=5,
//!   s=20 KB);
//! * 2d — the Download class optimum sits at low f / large s (paper: f=1,
//!   s=5 MB), and 2e — its disk-write-optimal s differs from the
//!   OHR-optimal one.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin_cache::{EvictionKind, HocSim, ThresholdPolicy};
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::path::Path;

/// The motivation grid is wider than the evaluation grid: it includes f=1
/// and multi-MB size thresholds so the Download optimum is expressible.
fn motivation_grid() -> (Vec<u32>, Vec<u64>) {
    let fs = vec![1u32, 2, 3, 4, 5, 6, 7];
    let ss_kb = vec![10u64, 20, 50, 100, 500, 1000, 5000, 10000];
    (fs, ss_kb)
}

struct GridResult {
    /// (f, s_kb, ohr, hoc_miss_bytes_per_request)
    cells: Vec<(u32, u64, f64, f64)>,
}

/// Selection key that makes a NaN cell lose: `total_cmp` alone would rank
/// positive NaN above every real value in a max, so a degenerate simulation
/// result could masquerade as the optimum.
fn nan_loses(x: f64, worst: f64) -> f64 {
    if x.is_nan() {
        worst
    } else {
        x
    }
}

impl GridResult {
    fn best_by_ohr(&self) -> (u32, u64, f64) {
        let c = self
            .cells
            .iter()
            .max_by(|a, b| {
                nan_loses(a.2, f64::NEG_INFINITY).total_cmp(&nan_loses(b.2, f64::NEG_INFINITY))
            })
            .unwrap();
        (c.0, c.1, c.2)
    }

    fn best_by_disk_write(&self) -> (u32, u64, f64) {
        let c = self
            .cells
            .iter()
            .min_by(|a, b| nan_loses(a.3, f64::INFINITY).total_cmp(&nan_loses(b.3, f64::INFINITY)))
            .unwrap();
        (c.0, c.1, c.3)
    }

    fn ohr_at(&self, f: u32, s_kb: u64) -> f64 {
        self.cells.iter().find(|c| c.0 == f && c.1 == s_kb).map(|c| c.2).expect("cell in grid")
    }
}

/// Sweeps the full (f, s) grid on one trace, one simulation per cell,
/// fanned out deterministically (`threads` 0 = auto): each cell is an
/// independent work item, so the grid is bitwise identical at any
/// thread count.
fn sweep(trace: &Trace, hoc_bytes: u64, threads: usize) -> GridResult {
    let (fs, ss) = motivation_grid();
    let grid_points: Vec<(u32, u64)> =
        fs.iter().flat_map(|&f| ss.iter().map(move |&s| (f, s))).collect();
    let cells = darwin_parallel::par_map(threads, &grid_points, |&(f, s)| {
        let mut sim = HocSim::new(hoc_bytes, EvictionKind::Lru, ThresholdPolicy::new(f, s * 1024));
        let m = sim.run_trace(trace);
        (f, s, m.hoc_ohr(), m.hoc_miss_bytes_per_request())
    });
    GridResult { cells }
}

/// Runs the Fig 2 family and writes `fig2*.csv`.
pub fn run(scale: &Scale, out: &Path) {
    let hoc = scale.hoc_bytes();
    // The motivation grids use the paper's actual window length (2 M
    // requests): high-f admission only pays off once an object's 6th+
    // requests arrive, so short windows would bias every grid toward f=1.
    // This experiment needs no training, so the full length is affordable.
    let len = (scale.online_trace_len() * 7).max(2_000_000);

    // 2a/2b: two windows of a production-like mixed trace with different
    // class mixes (the load balancer changed the mix between windows);
    // 2c/2d: single-class Image and Download traces. Generation is seeded
    // per trace, so the four builds fan out in parallel.
    let specs = [
        (MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.8), 2001u64),
        (MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.25), 2002),
        (MixSpec::single(TrafficClass::image()), 2003),
        (MixSpec::single(TrafficClass::download()), 2004),
    ];
    let traces = darwin_parallel::par_map(0, &specs, |(spec, seed)| {
        TraceGenerator::new(spec.clone(), *seed).generate(len)
    });

    let names = ["win1", "win2", "image", "download"];
    // Grids run one after another so each sweep gets the full worker pool
    // for its 56 cells.
    let grids: Vec<GridResult> = traces.iter().map(|t| sweep(t, hoc, 0)).collect();

    let mut rep = Report::new(
        "fig2_grids",
        "Fig 2: HOC OHR / disk-write grids over (f, s)",
        &["trace", "f", "s_kb", "ohr", "miss_bytes_per_req"],
        out,
    );
    for (name, grid) in names.iter().zip(&grids) {
        for &(f, s, ohr, dw) in &grid.cells {
            rep.row(&[name.to_string(), f.to_string(), s.to_string(), f4(ohr), format!("{dw:.1}")]);
        }
    }
    rep.finish().expect("write fig2 csv");

    // Headline checks the paper narrates.
    let mut sum = Report::new(
        "fig2_summary",
        "Fig 2 summary: optima and cross-window degradation",
        &["quantity", "value"],
        out,
    );
    let (f1, s1, o1) = grids[0].best_by_ohr();
    let (f2, s2, o2) = grids[1].best_by_ohr();
    sum.row(&["win1 best (f,s_kb,ohr)".into(), format!("f{f1} s{s1} {}", f4(o1))]);
    sum.row(&["win2 best (f,s_kb,ohr)".into(), format!("f{f2} s{s2} {}", f4(o2))]);
    // Degradation from deploying the other window's optimum (paper: 1.19 % /
    // 7.83 % on its randomly picked windows).
    let w1_with_w2_best = grids[0].ohr_at(f2, s2);
    let w2_with_w1_best = grids[1].ohr_at(f1, s1);
    sum.row(&[
        "win1 loss with win2 optimum (%)".into(),
        format!("{:.2}", (o1 - w1_with_w2_best) / o1 * 100.0),
    ]);
    sum.row(&[
        "win2 loss with win1 optimum (%)".into(),
        format!("{:.2}", (o2 - w2_with_w1_best) / o2 * 100.0),
    ]);
    let (fi, si, oi) = grids[2].best_by_ohr();
    let (fd, sd, od) = grids[3].best_by_ohr();
    sum.row(&["image best (paper: f5 s20)".into(), format!("f{fi} s{si} {}", f4(oi))]);
    sum.row(&["download best (paper: f1 s5000)".into(), format!("f{fd} s{sd} {}", f4(od))]);
    let (fw, sw, dw) = grids[3].best_by_disk_write();
    sum.row(&[
        "download disk-write best (paper: f1 s10000)".into(),
        format!("f{fw} s{sw} {dw:.1} B/req"),
    ]);
    sum.finish().expect("write fig2 summary");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The motivation grid — the heaviest sweep in the harness — is bitwise
    /// identical at 1 and 8 worker threads, cell for cell.
    #[test]
    fn grid_is_thread_count_invariant() {
        let trace = TraceGenerator::new(
            MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
            77,
        )
        .generate(30_000);
        let hoc = 4 * 1024 * 1024;
        let one = sweep(&trace, hoc, 1);
        let eight = sweep(&trace, hoc, 8);
        assert_eq!(one.cells.len(), eight.cells.len());
        for (a, b) in one.cells.iter().zip(&eight.cells) {
            assert_eq!((a.0, a.1), (b.0, b.1), "cell order must match");
            assert_eq!(a.2.to_bits(), b.2.to_bits(), "ohr at f{} s{}", a.0, a.1);
            assert_eq!(a.3.to_bits(), b.3.to_bits(), "disk write at f{} s{}", a.0, a.1);
        }
        // The selected optima therefore agree too.
        assert_eq!(one.best_by_ohr(), eight.best_by_ohr());
        assert_eq!(one.best_by_disk_write(), eight.best_by_disk_write());
    }

    /// `total_cmp`-based selection tolerates NaN cells (a sim returning a
    /// degenerate metric must not panic the whole experiment run).
    #[test]
    fn best_selection_survives_nan_cells() {
        let grid = GridResult {
            cells: vec![(1, 10, f64::NAN, 5.0), (2, 20, 0.4, f64::NAN), (3, 50, 0.6, 3.0)],
        };
        assert_eq!(grid.best_by_ohr(), (3, 50, 0.6));
        assert_eq!(grid.best_by_disk_write(), (3, 50, 3.0));
    }
}
