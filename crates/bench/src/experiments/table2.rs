//! Table 2: average improvement rate of Darwin relative to every baseline —
//! all 36 static experts, Percentile, HillClimbing (Δs = 10, 20 KB),
//! DirectMapping and AdaptSize — over the full online test set.

use crate::corpus::SharedContext;
use crate::report::Report;
use crate::runs::{self, tuning_sample, BaselineSuite};
use std::path::Path;

/// Runs Table 2.
pub fn run(ctx: &SharedContext, out: &Path) {
    let cache = ctx.scale.cache_config();
    let suite = BaselineSuite::build(
        &ctx.scale,
        ctx.model.grid(),
        &ctx.train_evals,
        &tuning_sample(&ctx.corpus.offline_train),
        &cache,
    );

    // Darwin OHR on every online test trace.
    let mut darwin_ohr = Vec::new();
    for trace in &ctx.corpus.online_test {
        darwin_ohr.push(runs::darwin_metrics(&ctx.model, &ctx.scale, trace, &cache).hoc_ohr());
    }

    // Accumulate improvements per baseline over all traces.
    let n_experts = ctx.model.grid().len();
    let mut labels: Vec<String> =
        (0..n_experts).map(|e| runs::expert_label(ctx.model.grid(), e)).collect();
    labels.extend(
        ["Percentile", "HC-10", "HC-20", "AdaptSize", "Direct"].map(String::from),
    );
    let mut sums = vec![0.0; labels.len()];

    for (ti, trace) in ctx.corpus.online_test.iter().enumerate() {
        let d = darwin_ohr[ti];
        for (e, &ohr) in ctx.online_evals[ti].hit_rates.iter().enumerate() {
            sums[e] += runs::improvement_pct(d, ohr);
        }
        for (bi, (_, m)) in suite.run_all(trace, &cache).into_iter().enumerate() {
            sums[n_experts + bi] += runs::improvement_pct(d, m.hoc_ohr());
        }
    }

    let n = ctx.corpus.online_test.len() as f64;
    let mut rep = Report::new(
        "table2",
        "Table 2: average OHR improvement rate of Darwin vs baselines (%)",
        &["baseline", "avg_improvement_pct"],
        out,
    );
    for (label, sum) in labels.into_iter().zip(&sums) {
        rep.row(&[label, format!("{:.2}", sum / n)]);
    }
    rep.finish().expect("write table2");
}
