//! Table 2: average improvement rate of Darwin relative to every baseline —
//! all 36 static experts, Percentile, HillClimbing (Δs = 10, 20 KB),
//! DirectMapping and AdaptSize — over the full online test set.

use crate::corpus::SharedContext;
use crate::report::Report;
use crate::runs::{self, tuning_sample, BaselineSuite};
use std::path::Path;

/// Runs Table 2.
pub fn run(ctx: &SharedContext, out: &Path) {
    let cache = ctx.scale.cache_config();
    let suite = BaselineSuite::build(
        &ctx.scale,
        ctx.model.grid(),
        &ctx.train_evals,
        &tuning_sample(&ctx.corpus.offline_train),
        &cache,
    );

    // Accumulate improvements per baseline over all traces. Each trace's
    // Darwin run and baseline suite is an independent work item; sums are
    // aggregated in trace order afterwards.
    let n_experts = ctx.model.grid().len();
    let mut labels: Vec<String> =
        (0..n_experts).map(|e| runs::expert_label(ctx.model.grid(), e)).collect();
    labels.extend(["Percentile", "HC-10", "HC-20", "AdaptSize", "Direct"].map(String::from));
    let mut sums = vec![0.0; labels.len()];

    let per_trace = darwin_parallel::par_run(0, ctx.corpus.online_test.len(), |ti| {
        let trace = &ctx.corpus.online_test[ti];
        let d = runs::darwin_metrics(&ctx.model, &ctx.scale, trace, &cache).hoc_ohr();
        let mut imps = Vec::with_capacity(n_experts + 5);
        for &ohr in &ctx.online_evals[ti].hit_rates {
            imps.push(runs::improvement_pct(d, ohr));
        }
        for (_, m) in suite.run_all(trace, &cache) {
            imps.push(runs::improvement_pct(d, m.hoc_ohr()));
        }
        imps
    });
    for imps in &per_trace {
        for (s, imp) in sums.iter_mut().zip(imps) {
            *s += imp;
        }
    }

    let n = ctx.corpus.online_test.len() as f64;
    let mut rep = Report::new(
        "table2",
        "Table 2: average OHR improvement rate of Darwin vs baselines (%)",
        &["baseline", "avg_improvement_pct"],
        out,
    );
    for (label, sum) in labels.into_iter().zip(&sums) {
        rep.row(&[label, format!("{:.2}", sum / n)]);
    }
    rep.finish().expect("write table2");
}
