//! Fault-injection serving benchmark: exactly-once answering under scripted
//! shard deaths (`BENCH_chaos.json`).
//!
//! Three scenarios run the same trace through a loopback [`Gateway`] over a
//! 4-shard fleet with a scripted [`FaultPlan`]:
//!
//! * `clean` — empty plan; the control run. No restarts, nothing dropped.
//! * `restarts` — three scripted worker panics, all inside the default
//!   restart budget: the supervisor cold-restarts each time, the client sees
//!   exactly one `Dropped` verdict per death, and service continues.
//! * `degraded` — a panic against a zero-restart budget: the shard is buried
//!   at per-shard request 100 and roughly a quarter of the remaining trace
//!   is answered `Unavailable` (degraded mode, bounded by the dead shard's
//!   share of the keyspace).
//!
//! Every scenario asserts the conservation law end to end: the client's
//! verdict tally covers the whole trace (exactly-once answering over the
//! wire), it agrees with the fleet's own counters, and the `Unavailable`
//! fraction stays within the dead-shard share. The scripted plans key off
//! per-shard request sequence numbers, so fault timing is reproducible
//! run to run even though wall-clock interleaving is not.
//!
//! Output: a console table, `<out>/chaos.csv`, `<out>/BENCH_chaos.json`,
//! and `<out>/chaos_events.log` — every scenario's per-shard event journal
//! (deaths, restart verdicts, restores, fault injections) fetched over the
//! wire with an `EVENTS` frame and rendered one event per line.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin_cache::ThresholdPolicy;
use darwin_gateway::{loadgen, Gateway, GatewayConfig, LoadgenConfig};
use darwin_shard::{
    Backpressure, FaultEvent, FaultKind, FaultPlan, FleetConfig, HashRouter, RestartBudget,
};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use serde::Serialize;
use std::fmt::Write;
use std::path::Path;

/// Shards behind the gateway in every scenario.
const SHARDS: usize = 4;

/// One row of `BENCH_chaos.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosRow {
    /// Scenario name (`clean`, `restarts`, `degraded`).
    pub scenario: String,
    /// Scripted worker panics in the plan.
    pub scripted_panics: usize,
    /// Restart budget per shard.
    pub max_restarts: u32,
    /// Verdicts the client tallied (must equal `requests` — exactly-once).
    pub answered: u64,
    /// Requests processed by cache servers.
    pub processed: u64,
    /// Requests dropped (in flight across a worker death, or shed).
    pub dropped: u64,
    /// Requests answered `Unavailable` by degraded routing.
    pub unavailable: u64,
    /// Fraction of the trace answered `Unavailable`.
    pub unavailable_frac: f64,
    /// Supervisor cold restarts across the fleet.
    pub restarts: u32,
    /// Shards buried after exhausting their budget.
    pub dead_shards: usize,
    /// End-to-end requests/sec of the replay.
    pub rps: f64,
    /// Events journaled across the fleet (see `chaos_events.log`).
    pub journal_events: u64,
}

/// The full `BENCH_chaos.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosBench {
    /// Experiment name.
    pub experiment: String,
    /// Scale factor the trace length derives from.
    pub scale: usize,
    /// Requests in the benchmark trace.
    pub requests: usize,
    /// Fleet shard count in every scenario.
    pub shards: usize,
    /// Per-scenario measurements.
    pub rows: Vec<ChaosRow>,
}

struct Scenario {
    name: &'static str,
    plan: FaultPlan,
    budget: RestartBudget,
    /// Inclusive bounds on the `Unavailable` fraction the scenario must land
    /// in (degraded mode is *bounded* degradation, not an outage).
    unavailable_frac: (f64, f64),
    expect_restarts: u32,
    expect_dead: usize,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "clean",
            plan: FaultPlan::default(),
            budget: RestartBudget::default(),
            unavailable_frac: (0.0, 0.0),
            expect_restarts: 0,
            expect_dead: 0,
        },
        Scenario {
            name: "restarts",
            plan: FaultPlan::new(vec![
                FaultEvent { shard: 0, at: 500, kind: FaultKind::Panic },
                FaultEvent { shard: 1, at: 800, kind: FaultKind::Panic },
                FaultEvent { shard: 2, at: 1_200, kind: FaultKind::Panic },
            ]),
            budget: RestartBudget::default(),
            unavailable_frac: (0.0, 0.0),
            expect_restarts: 3,
            expect_dead: 0,
        },
        Scenario {
            name: "degraded",
            plan: FaultPlan::new(vec![FaultEvent { shard: 0, at: 100, kind: FaultKind::Panic }]),
            budget: RestartBudget { max_restarts: 0, window_requests: 100_000 },
            // Shard 0 holds ~1/4 of the keyspace and dies ~immediately, so
            // its whole remaining share goes Unavailable.
            unavailable_frac: (0.10, 0.35),
            expect_restarts: 0,
            expect_dead: 1,
        },
    ]
}

fn bench_trace(scale: &Scale) -> Trace {
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 2026)
        .generate(scale.online_trace_len() / 4)
}

fn policy() -> ThresholdPolicy {
    ThresholdPolicy::new(2, 100 * 1024)
}

/// Runs the scenarios and writes the table, CSV and `BENCH_chaos.json`.
pub fn run(scale: &Scale, out: &Path) {
    let trace = bench_trace(scale);
    let n = trace.len();
    let cache = scale.cache_config();

    let mut rows: Vec<ChaosRow> = Vec::new();
    let mut events_log = String::new();
    for sc in scenarios() {
        let scripted_panics = sc.plan.panics();
        let gateway = Gateway::bind_with(
            "127.0.0.1:0",
            FleetConfig {
                shards: SHARDS,
                queue_capacity: 8192,
                batch: 256,
                backpressure: Backpressure::Block,
                snapshot_every: None,
                restart_budget: sc.budget,
                checkpoint_every: None,
                shed_watermark: None,
                replicas: 0,
            },
            cache.clone(),
            Box::new(HashRouter),
            GatewayConfig { fault_plan: sc.plan, ..GatewayConfig::default() },
            |_| StaticDriver::new(policy()),
        )
        .expect("bind loopback gateway");
        let cfg = LoadgenConfig { connections: 2, batch: 64, window: 8, ..LoadgenConfig::default() };
        let report = loadgen::run(gateway.local_addr(), &trace, cfg).expect("loadgen replay");
        // Drain the journals over the wire (the EVENTS opcode) before the
        // fleet is joined — the same path `inspect --watch` polls.
        let journals = loadgen::fetch_events(gateway.local_addr()).expect("fetch events");
        let mut journal_events = 0u64;
        let _ = writeln!(events_log, "== scenario {} ==", sc.name);
        for (shard, journal) in &journals {
            journal_events += journal.events.len() as u64;
            for ev in &journal.events {
                let _ = writeln!(events_log, "s{shard} {}", ev.render());
            }
        }
        gateway.shutdown();
        let fleet = gateway.finish().expect("supervised gateway finishes cleanly");

        // The contract this benchmark exists to certify: exactly-once
        // answering over the wire, agreeing with the fleet's own ledger,
        // with degradation bounded by the dead shards' keyspace share.
        let t = report.tally;
        assert_eq!(t.total(), n as u64, "{}: every request answered exactly once", sc.name);
        assert_eq!(
            fleet.total_processed() + fleet.total_dropped() + fleet.total_unavailable(),
            n as u64,
            "{}: fleet-side conservation",
            sc.name
        );
        assert_eq!(t.unavailable, fleet.total_unavailable(), "{}: ledgers agree", sc.name);
        assert_eq!(t.dropped, fleet.total_dropped(), "{}: ledgers agree", sc.name);
        assert_eq!(fleet.total_restarts(), sc.expect_restarts, "{}: restarts", sc.name);
        assert_eq!(fleet.dead_shards(), sc.expect_dead, "{}: dead shards", sc.name);
        let frac = t.unavailable as f64 / n as f64;
        assert!(
            frac >= sc.unavailable_frac.0 && frac <= sc.unavailable_frac.1,
            "{}: unavailable fraction {frac:.3} outside [{}, {}]",
            sc.name,
            sc.unavailable_frac.0,
            sc.unavailable_frac.1
        );

        rows.push(ChaosRow {
            scenario: sc.name.into(),
            scripted_panics,
            max_restarts: sc.budget.max_restarts,
            answered: t.total(),
            processed: fleet.total_processed(),
            dropped: fleet.total_dropped(),
            unavailable: fleet.total_unavailable(),
            unavailable_frac: frac,
            restarts: fleet.total_restarts(),
            dead_shards: fleet.dead_shards(),
            rps: report.rps(),
            journal_events,
        });
    }

    let mut table = Report::new(
        "chaos",
        "Exactly-once answering under scripted shard deaths",
        &["scenario", "panics", "answered", "dropped", "unavail", "frac", "restarts", "dead", "rps"],
        out,
    );
    for r in &rows {
        table.row(&[
            r.scenario.clone(),
            r.scripted_panics.to_string(),
            r.answered.to_string(),
            r.dropped.to_string(),
            r.unavailable.to_string(),
            f4(r.unavailable_frac),
            r.restarts.to_string(),
            r.dead_shards.to_string(),
            format!("{:.0}", r.rps),
        ]);
    }
    table.finish().expect("write chaos.csv");

    let bench = ChaosBench {
        experiment: "chaos".into(),
        scale: scale.factor(),
        requests: n,
        shards: SHARDS,
        rows,
    };
    std::fs::create_dir_all(out).expect("create output dir");
    let json = serde_json::to_string_pretty(&bench).expect("serialize BENCH_chaos");
    let path = out.join("BENCH_chaos.json");
    std::fs::write(&path, &json).expect("write BENCH_chaos.json");
    println!("wrote {}", path.display());
    let log_path = out.join("chaos_events.log");
    std::fs::write(&log_path, &events_log).expect("write chaos_events.log");
    println!("wrote {}", log_path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_has_expected_shape() {
        let doc = ChaosBench {
            experiment: "chaos".into(),
            scale: 1,
            requests: 50_000,
            shards: SHARDS,
            rows: vec![ChaosRow {
                scenario: "degraded".into(),
                scripted_panics: 1,
                max_restarts: 0,
                answered: 50_000,
                processed: 37_000,
                dropped: 1,
                unavailable: 12_999,
                unavailable_frac: 0.26,
                restarts: 0,
                dead_shards: 1,
                rps: 100_000.0,
                journal_events: 3,
            }],
        };
        let s = serde_json::to_string_pretty(&doc).unwrap();
        assert!(s.contains("\"experiment\""));
        assert!(s.contains("unavailable_frac"));
        assert!(s.contains("dead_shards"));
    }

    #[test]
    fn scenarios_are_well_formed() {
        let sc = scenarios();
        assert_eq!(sc.len(), 3);
        assert!(sc.iter().any(|s| s.expect_dead > 0), "one scenario must exercise burial");
        assert!(sc.iter().any(|s| s.expect_restarts > 0), "one scenario must exercise restarts");
        for s in &sc {
            assert!(s.unavailable_frac.0 <= s.unavailable_frac.1);
        }
    }
}
