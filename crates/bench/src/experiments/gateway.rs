//! Gateway serving throughput: loadgen rps and latency percentiles vs
//! connection and shard count (`BENCH_gateway.json`).
//!
//! Each cell of the {shards} × {connections} sweep binds a loopback
//! [`Gateway`] (static expert per shard — the serving path, not learning, is
//! what's timed) and replays the same generated trace through the
//! [`darwin_gateway::loadgen`] client. Reported `rps` is end-to-end: wire
//! encode, kernel loopback, frame decode, shard queue handoff, cache
//! processing and the verdict stream back. On a box with fewer cores than
//! threads the absolute numbers measure protocol + handoff overhead rather
//! than scale-out — read them against `BENCH_shard.json`'s critical-path
//! projection, which bounds what the same fleet serves on one-core-per-shard
//! hardware.
//!
//! Output: a console table, `<out>/gateway_rps.csv`, and
//! `<out>/BENCH_gateway.json`.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin_cache::ThresholdPolicy;
use darwin_gateway::{loadgen, Gateway, LoadgenConfig};
use darwin_shard::{Backpressure, FleetConfig, HashRouter};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use serde::Serialize;
use std::path::Path;

/// Shard counts swept by the experiment.
pub const SHARD_COUNTS: [usize; 3] = [1, 4, 8];
/// Client connection counts swept by the experiment.
pub const CONNECTION_COUNTS: [usize; 2] = [1, 4];

/// Repetitions per cell; the fastest run is kept.
const REPEATS: usize = 2;

/// One row of `BENCH_gateway.json`.
#[derive(Debug, Clone, Serialize)]
pub struct GatewayRow {
    /// Fleet shard count behind the gateway.
    pub shards: usize,
    /// Concurrent loadgen connections.
    pub connections: usize,
    /// End-to-end requests/sec of the best repeat.
    pub rps: f64,
    /// Median per-frame round-trip, microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-frame round-trip, microseconds.
    pub p99_us: u64,
    /// Fleet-wide object hit ratio (identical across cells by determinism
    /// at 1 connection; at 4 connections interleaving may perturb it).
    pub fleet_ohr: f64,
    /// Requests shed (always 0 under blocking backpressure).
    pub dropped: u64,
}

/// The full `BENCH_gateway.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct GatewayBench {
    /// Experiment name.
    pub experiment: String,
    /// Scale factor the trace length derives from.
    pub scale: usize,
    /// Requests in the benchmark trace.
    pub requests: usize,
    /// Loadgen requests per `GET` frame.
    pub frame_batch: usize,
    /// Loadgen frames in flight per connection.
    pub window: usize,
    /// CPU cores visible to this process (interprets the numbers).
    pub cpu_cores: usize,
    /// Per-cell measurements.
    pub rows: Vec<GatewayRow>,
}

fn bench_trace(scale: &Scale) -> Trace {
    // 2x the online trace length: long enough that steady-state serving
    // dominates connection setup, short enough for a CI box at debug speeds.
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 2025)
        .generate(2 * scale.online_trace_len())
}

fn policy() -> ThresholdPolicy {
    ThresholdPolicy::new(2, 100 * 1024)
}

/// Runs the sweep and writes the table, CSV and `BENCH_gateway.json`.
pub fn run(scale: &Scale, out: &Path) {
    let trace = bench_trace(scale);
    let n = trace.len();
    let cache = scale.cache_config();
    let loadgen_base =
        LoadgenConfig { connections: 1, batch: 64, window: 8, ..LoadgenConfig::default() };

    let mut rows: Vec<GatewayRow> = Vec::new();
    for &shards in &SHARD_COUNTS {
        for &connections in &CONNECTION_COUNTS {
            let cfg = LoadgenConfig { connections, ..loadgen_base };
            let mut best: Option<(f64, loadgen::LoadgenReport, f64, u64)> = None;
            for _ in 0..REPEATS {
                let gateway = Gateway::bind(
                    "127.0.0.1:0",
                    FleetConfig {
                        shards,
                        queue_capacity: 8192,
                        batch: 256,
                        backpressure: Backpressure::Block,
                        snapshot_every: None,
                        restart_budget: Default::default(),
                        checkpoint_every: None,
                        shed_watermark: None,
                        replicas: 0,
                    },
                    cache.clone(),
                    Box::new(HashRouter),
                    |_| StaticDriver::new(policy()),
                )
                .expect("bind loopback gateway");
                let report = loadgen::run(gateway.local_addr(), &trace, cfg).expect("loadgen replay");
                assert_eq!(report.tally.total(), n as u64, "every request gets a verdict");
                gateway.shutdown();
                let fleet = gateway.finish().expect("clean gateway shutdown");
                assert_eq!(fleet.total_processed(), n as u64);
                let rps = report.rps();
                let ohr = fleet.fleet_cache().hoc_ohr();
                let dropped = fleet.total_dropped();
                if best.as_ref().is_none_or(|(b, ..)| rps > *b) {
                    best = Some((rps, report, ohr, dropped));
                }
            }
            let (rps, report, fleet_ohr, dropped) = best.expect("at least one repeat");
            rows.push(GatewayRow {
                shards,
                connections,
                rps,
                p50_us: report.latency_percentile(50.0).as_micros() as u64,
                p99_us: report.latency_percentile(99.0).as_micros() as u64,
                fleet_ohr,
                dropped,
            });
        }
    }

    let mut table = Report::new(
        "gateway_rps",
        "Gateway serving throughput vs shards x connections",
        &["shards", "conns", "rps", "p50_us", "p99_us", "ohr", "dropped"],
        out,
    );
    for r in &rows {
        table.row(&[
            r.shards.to_string(),
            r.connections.to_string(),
            format!("{:.0}", r.rps),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            f4(r.fleet_ohr),
            r.dropped.to_string(),
        ]);
    }
    table.finish().expect("write gateway_rps.csv");

    let bench = GatewayBench {
        experiment: "gateway_rps".into(),
        scale: scale.factor(),
        requests: n,
        frame_batch: loadgen_base.batch,
        window: loadgen_base.window,
        cpu_cores: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        rows,
    };
    std::fs::create_dir_all(out).expect("create output dir");
    let json = serde_json::to_string_pretty(&bench).expect("serialize BENCH_gateway");
    let path = out.join("BENCH_gateway.json");
    std::fs::write(&path, &json).expect("write BENCH_gateway.json");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_has_expected_shape() {
        let doc = GatewayBench {
            experiment: "gateway_rps".into(),
            scale: 1,
            requests: 100,
            frame_batch: 64,
            window: 8,
            cpu_cores: 1,
            rows: vec![GatewayRow {
                shards: 4,
                connections: 4,
                rps: 1000.0,
                p50_us: 150,
                p99_us: 900,
                fleet_ohr: 0.3,
                dropped: 0,
            }],
        };
        let s = serde_json::to_string_pretty(&doc).unwrap();
        assert!(s.contains("\"experiment\""));
        assert!(s.contains("gateway_rps"));
        assert!(s.contains("p99_us"));
        assert!(s.contains("connections"));
    }
}
