//! Adaptation timeline (extension experiment): windowed HOC OHR over a
//! traffic-shift workload, comparing
//!
//! * the paper's fixed-epoch Darwin,
//! * Darwin with the drift-restart extension
//!   ([`darwin::OnlineConfig::drift_threshold`]), and
//! * two static experts (each phase's favourite).
//!
//! The shift lands *inside* a fixed epoch, so vanilla Darwin stays on the
//! stale expert until the next epoch boundary while the drift variant
//! re-identifies within a few detector chunks — the series make the
//! difference visible request-window by request-window.

use crate::corpus::SharedContext;
use crate::report::{f4, Report};
use darwin::runner::run_darwin_with_timeline;
use darwin::Expert;
use darwin_cache::CacheServer;
use darwin_trace::{concat_traces, MixSpec, Trace, TraceGenerator, TrafficClass};
use std::path::Path;

/// Runs the timeline experiment.
pub fn run(ctx: &SharedContext, out: &Path) {
    let cache = ctx.scale.cache_config();
    let len = ctx.scale.online_trace_len();
    let workload = shift_workload(len);
    let window = (len / 40).max(500);

    let mut base_cfg = ctx.scale.online_config();
    base_cfg.epoch_requests = workload.len().max(2); // one fixed epoch
    let drift_cfg = darwin::OnlineConfig { drift_threshold: Some(0.4), ..base_cfg };

    let fixed = run_darwin_with_timeline(&ctx.model, &base_cfg, &workload, &cache, window);
    let drift = run_darwin_with_timeline(&ctx.model, &drift_cfg, &workload, &cache, window);

    // Static timelines.
    let static_timeline = |e: Expert| -> Vec<(u64, f64)> {
        let mut server = CacheServer::new(cache.clone());
        server.set_policy(e.policy);
        let mut out = Vec::new();
        let mut start = server.metrics();
        for (i, r) in workload.iter().enumerate() {
            server.process(r);
            if (i + 1) % window == 0 {
                let now = server.metrics();
                out.push((i as u64 + 1, now.diff(&start).hoc_ohr()));
                start = now;
            }
        }
        out
    };
    let s_img = static_timeline(Expert::new(5, 20));
    let s_dl = static_timeline(Expert::new(2, 1000));

    let mut rep = Report::new(
        "timeline",
        "Adaptation timeline: windowed OHR across a mid-epoch traffic shift",
        &["request", "darwin_fixed", "darwin_drift", "static_f5s20", "static_f2s1000"],
        out,
    );
    for i in 0..fixed.timeline.len() {
        rep.row(&[
            fixed.timeline[i].0.to_string(),
            f4(fixed.timeline[i].1),
            f4(drift.timeline.get(i).map(|&(_, o)| o).unwrap_or(0.0)),
            f4(s_img.get(i).map(|&(_, o)| o).unwrap_or(0.0)),
            f4(s_dl.get(i).map(|&(_, o)| o).unwrap_or(0.0)),
        ]);
    }
    rep.finish().expect("write timeline");
    println!(
        "[timeline] overall OHR: fixed-epoch {:.4} vs drift-restart {:.4} \
         (restarts happen only in the drift variant)",
        fixed.metrics.hoc_ohr(),
        drift.metrics.hoc_ohr()
    );
}

/// The shift workload: image-heavy for the first quarter, download-heavy
/// for the rest — the shift lands at 25 % of one long epoch.
pub fn shift_workload(len: usize) -> Trace {
    let a = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.95),
        8101,
    )
    .generate(len / 4);
    let b = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.05),
        8102,
    )
    .generate(len - len / 4);
    concat_traces(&[a, b])
}
