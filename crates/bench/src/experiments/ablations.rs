//! Ablations of Darwin's design choices (called out in DESIGN.md):
//!
//! 1. **Side information on/off** — the Theorem 2 claim: identification
//!    rounds stay roughly flat in K with side information but grow with K
//!    under classical bandit feedback. Measured on synthetic Gaussian
//!    environments.
//! 2. **θ sweep end-to-end** — larger θ means bigger candidate sets: more
//!    robust coverage but longer identification.
//! 3. **Warm-up length sweep** — shorter warm-ups misestimate features and
//!    can pick the wrong cluster.
//! 4. **Cluster-count sweep** — k-means inertia and resulting set sizes.
//! 5. **Predictor features** — with vs without the bucketized size
//!    distribution (§4.1 claims it sharpens conditional estimates).

use crate::corpus::SharedContext;
use crate::experiments::fig5::order_accuracy;
use crate::report::{f4, Report};
use crate::runs;
use darwin::offline::OfflineTrainer;
use darwin_bandit::{ClassicalTrackAndStop, GaussianEnv, SideInfo, TasConfig, TrackAndStopSideInfo};
use darwin_cache::Objective;
use darwin_cluster::{KMeans, Normalizer};
use std::path::Path;
use std::sync::Arc;

/// Runs all ablations.
pub fn run(ctx: &SharedContext, out: &Path) {
    side_info_scaling(out);
    theta_sweep(ctx, out);
    warmup_sweep(ctx, out);
    round_length_sweep(ctx, out);
    cluster_count_sweep(ctx, out);
    predictor_features(ctx, out);
    eviction_policy(ctx, out);
    overhead(ctx, out);
}

/// Ablation 1: rounds vs K, with and without side information (Theorem 2).
pub fn side_info_scaling(out: &Path) {
    let mut rep = Report::new(
        "ablation_side_info",
        "Ablation: identification rounds vs K (side info vs classical)",
        &["K", "tas_si_mean_rounds", "classical_mean_rounds"],
        out,
    );
    let cfg = TasConfig { stability_rounds: None, max_rounds: 60_000, ..TasConfig::default() };
    // Each K is an independent (seeded) bandit study; fan out over K and
    // emit rows in K order.
    let ks = [2usize, 4, 8, 16, 32];
    let per_k = darwin_parallel::par_map(0, &ks, |&k| {
        // Means: one good arm, the rest staggered below it.
        let mu: Vec<f64> =
            (0..k).map(|i| if i == 0 { 0.6 } else { 0.5 - 0.01 * (i as f64 % 5.0) }).collect();
        let sigma = SideInfo::two_level(k, 0.05, 0.08);
        let mut si_rounds = 0usize;
        let mut cl_rounds = 0usize;
        let seeds = 5u64;
        for seed in 0..seeds {
            let mut env = GaussianEnv::new(mu.clone(), sigma.clone(), seed);
            let tas = TrackAndStopSideInfo::new(sigma.clone(), 0.05, cfg);
            si_rounds += tas.run(|arm| env.pull(arm)).1;

            let mut env2 = GaussianEnv::new(mu.clone(), sigma.clone(), 100 + seed);
            let classical = ClassicalTrackAndStop::homoscedastic(k, 0.05, 0.05, cfg);
            cl_rounds += classical.run(|arm| env2.pull(arm)[arm]).1;
        }
        (si_rounds as f64 / seeds as f64, cl_rounds as f64 / seeds as f64)
    });
    for (&k, (si_mean, cl_mean)) in ks.iter().zip(&per_k) {
        rep.row(&[k.to_string(), format!("{si_mean:.1}"), format!("{cl_mean:.1}")]);
    }
    rep.finish().expect("write side-info ablation");
}

/// Ablation 2: end-to-end OHR and identification rounds vs θ.
pub fn theta_sweep(ctx: &SharedContext, out: &Path) {
    let cache = ctx.scale.cache_config();
    let picks = ctx.ensemble_indices();
    let mut rep = Report::new(
        "ablation_theta",
        "Ablation: theta sweep (set size vs OHR vs rounds)",
        &["theta_pct", "mean_set_size", "mean_identify_rounds", "mean_ohr"],
        out,
    );
    for theta in [0.5, 1.0, 5.0] {
        let mut cfg = ctx.offline_cfg.clone();
        cfg.theta_percent = theta;
        let trainer = OfflineTrainer::new(cfg);
        let model = Arc::new(trainer.train_from_evaluations(&ctx.train_evals));
        // Per-pick Darwin runs are independent; aggregate in pick order.
        let per_pick = darwin_parallel::par_map(0, &picks, |&ti| {
            let trace = &ctx.corpus.online_test[ti];
            let rep2 = darwin::run_darwin(&model, &ctx.scale.online_config(), trace, &cache);
            let ep = rep2.epochs.first().map(|ep| (ep.set_size as f64, ep.identify_rounds as f64));
            (ep, rep2.metrics.hoc_ohr())
        });
        let mut sets = Vec::new();
        let mut rounds = Vec::new();
        let mut ohrs = Vec::new();
        for (ep, ohr) in per_pick {
            if let Some((set, round)) = ep {
                sets.push(set);
                rounds.push(round);
            }
            ohrs.push(ohr);
        }
        rep.row(&[
            format!("{theta}"),
            format!("{:.1}", runs::Stats::of(&sets).mean),
            format!("{:.1}", runs::Stats::of(&rounds).mean),
            f4(runs::Stats::of(&ohrs).mean),
        ]);
    }
    rep.finish().expect("write theta ablation");
}

/// Ablation 3: warm-up length sweep.
pub fn warmup_sweep(ctx: &SharedContext, out: &Path) {
    let cache = ctx.scale.cache_config();
    let picks = ctx.ensemble_indices();
    let base = ctx.scale.online_config();
    let mut rep = Report::new(
        "ablation_warmup",
        "Ablation: warm-up length vs OHR",
        &["warmup_pct_of_epoch", "mean_ohr"],
        out,
    );
    for pct in [0.5, 1.0, 3.0, 10.0] {
        let mut cfg = base;
        cfg.warmup_requests = ((base.epoch_requests as f64) * pct / 100.0) as usize;
        let ohrs = darwin_parallel::par_map(0, &picks, |&ti| {
            let trace = &ctx.corpus.online_test[ti];
            darwin::run_darwin(&ctx.model, &cfg, trace, &cache).metrics.hoc_ohr()
        });
        rep.row(&[format!("{pct}"), f4(runs::Stats::of(&ohrs).mean)]);
    }
    rep.finish().expect("write warmup ablation");
}

/// Ablation: round-length sweep. Too-short rounds leave rewards dominated
/// by the previous expert's cache state (§4.2's de-correlation requirement);
/// too-long rounds burn the epoch exploring.
pub fn round_length_sweep(ctx: &SharedContext, out: &Path) {
    let cache = ctx.scale.cache_config();
    let picks = ctx.ensemble_indices();
    let base = ctx.scale.online_config();
    let mut rep = Report::new(
        "ablation_round_length",
        "Ablation: bandit round length vs OHR and rounds",
        &["round_pct_of_epoch", "mean_identify_rounds", "mean_ohr"],
        out,
    );
    for pct in [0.2, 0.5, 1.0, 2.0] {
        let mut cfg = base;
        cfg.round_requests = (((base.epoch_requests as f64) * pct / 100.0) as usize).max(50);
        let per_pick = darwin_parallel::par_map(0, &picks, |&ti| {
            let trace = &ctx.corpus.online_test[ti];
            let r = darwin::run_darwin(&ctx.model, &cfg, trace, &cache);
            (r.epochs.first().map(|ep| ep.identify_rounds as f64), r.metrics.hoc_ohr())
        });
        let mut rounds = Vec::new();
        let mut ohrs = Vec::new();
        for (round, ohr) in per_pick {
            if let Some(round) = round {
                rounds.push(round);
            }
            ohrs.push(ohr);
        }
        rep.row(&[
            format!("{pct}"),
            format!("{:.1}", runs::Stats::of(&rounds).mean),
            f4(runs::Stats::of(&ohrs).mean),
        ]);
    }
    rep.finish().expect("write round-length ablation");
}

/// Ablation: HOC eviction policy under the best static expert per trace —
/// the cache substrate's eviction flexibility (LRU vs FIFO vs LFU vs S4LRU).
pub fn eviction_policy(ctx: &SharedContext, out: &Path) {
    use darwin_cache::{EvictionKind, HocSim};
    let picks = ctx.ensemble_indices();
    let mut rep = Report::new(
        "ablation_eviction",
        "Ablation: HOC eviction policy (best static expert per trace)",
        &["trace", "lru", "fifo", "lfu", "s4lru"],
        out,
    );
    // One work item per (trace, eviction-kind) pair: 4 full-trace sims per
    // pick, all independent.
    let kinds = [
        EvictionKind::Lru,
        EvictionKind::Fifo,
        EvictionKind::Lfu,
        EvictionKind::SegmentedLru { segments: 4 },
    ];
    let pairs: Vec<(usize, EvictionKind)> =
        picks.iter().flat_map(|&ti| kinds.iter().map(move |&k| (ti, k))).collect();
    let ohrs = darwin_parallel::par_map(0, &pairs, |&(ti, kind)| {
        let trace = &ctx.corpus.online_test[ti];
        let best = ctx.online_evals[ti].best_expert();
        let policy = ctx.model.grid().get(best).policy;
        let mut sim = HocSim::new(ctx.scale.hoc_bytes(), kind, policy);
        sim.run_trace(trace).hoc_ohr()
    });
    for (pi, &ti) in picks.iter().enumerate() {
        let mut cells = vec![format!("mix{ti}")];
        for ki in 0..kinds.len() {
            cells.push(f4(ohrs[pi * kinds.len() + ki]));
        }
        rep.row(&cells);
    }
    rep.finish().expect("write eviction ablation");
}

/// The §6.4-style overhead table: per-request time of the simulator with
/// and without Darwin's online machinery, plus the model's memory footprint.
pub fn overhead(ctx: &SharedContext, out: &Path) {
    let cache = ctx.scale.cache_config();
    let trace = &ctx.corpus.online_test[0];

    let t0 = std::time::Instant::now();
    let _ = darwin::run_static(darwin::Expert::new(2, 100), trace, &cache);
    let static_ns = t0.elapsed().as_nanos() as f64 / trace.len() as f64;

    let t1 = std::time::Instant::now();
    let _ = darwin::run_darwin(&ctx.model, &ctx.scale.online_config(), trace, &cache);
    let darwin_ns = t1.elapsed().as_nanos() as f64 / trace.len() as f64;

    let mut rep = Report::new(
        "overhead",
        "Overhead: per-request cost and model memory (cf. §6.4)",
        &["quantity", "value"],
        out,
    );
    rep.row(&["static ns/request".into(), format!("{static_ns:.0}")]);
    rep.row(&["darwin ns/request".into(), format!("{darwin_ns:.0}")]);
    rep.row(&[
        "darwin overhead %".into(),
        format!("{:.1}", (darwin_ns - static_ns) / static_ns * 100.0),
    ]);
    rep.row(&[
        "model memory footprint".into(),
        format!("{:.1} KiB", ctx.model.memory_footprint_bytes() as f64 / 1024.0),
    ]);
    // R4 contrast (§3.2.1): HillClimbing needs two live shadow caches — two
    // extra HOC-sized states — where Darwin only holds its predictor nets.
    rep.row(&[
        "hillclimbing shadow memory (2 x HOC)".into(),
        format!("{:.1} KiB", (2 * ctx.scale.hoc_bytes()) as f64 / 1024.0),
    ]);
    rep.row(&[
        "darwin / hillclimbing memory ratio".into(),
        format!("{:.4}", ctx.model.memory_footprint_bytes() as f64 / (2 * ctx.scale.hoc_bytes()) as f64),
    ]);
    rep.finish().expect("write overhead");
}

/// Ablation 4: cluster-count sweep (inertia and set sizes).
pub fn cluster_count_sweep(ctx: &SharedContext, out: &Path) {
    let rows: Vec<Vec<f64>> = ctx.train_evals.iter().map(|e| e.features.values().to_vec()).collect();
    let norm = Normalizer::fit(&rows);
    let z: Vec<Vec<f64>> = rows.iter().map(|r| norm.transform(r)).collect();
    let mut rep = Report::new(
        "ablation_clusters",
        "Ablation: number of clusters vs inertia and set size",
        &["k", "inertia", "mean_set_size"],
        out,
    );
    for k in [2usize, 4, 8, 16] {
        let km = KMeans::fit(&z, k, 200, 3);
        let mut cfg = ctx.offline_cfg.clone();
        cfg.n_clusters = k;
        let trainer = OfflineTrainer::new(cfg);
        let (assignment, sets) = trainer.cluster_expert_sets(&ctx.train_evals, 1.0, Objective::HocOhr);
        let sizes: Vec<f64> = assignment.iter().map(|&c| sets[c].len() as f64).collect();
        rep.row(&[
            k.to_string(),
            format!("{:.2}", km.inertia()),
            format!("{:.1}", runs::Stats::of(&sizes).mean),
        ]);
    }
    rep.finish().expect("write cluster ablation");
}

/// Ablation 5: predictor inputs with vs without the size distribution.
pub fn predictor_features(ctx: &SharedContext, out: &Path) {
    let mut rep = Report::new(
        "ablation_predictor_features",
        "Ablation: predictor order accuracy with/without size-distribution input (k=1%)",
        &["variant", "mean_acc", "frac_above_80pct"],
        out,
    );
    for (label, use_dist) in [("with_size_dist", true), ("without_size_dist", false)] {
        let mut cfg = ctx.offline_cfg.clone();
        cfg.train_all_pairs = true;
        cfg.predictor_use_size_dist = use_dist;
        let trainer = OfflineTrainer::new(cfg.clone());
        let model = trainer.train_from_evaluations(&ctx.train_evals);
        let n = cfg.grid.len();
        // All ordered (i, j) pairs are independent accuracy probes.
        let pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j))).collect();
        let accs = darwin_parallel::par_map(0, &pairs, |&(i, j)| {
            order_accuracy(&model, i, j, &ctx.test_evals, 1.0)
        });
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        let above = accs.iter().filter(|&&a| a > 0.8).count() as f64 / accs.len() as f64;
        rep.row(&[label.to_string(), f4(mean), f4(above)]);
    }
    rep.finish().expect("write predictor ablation");
}
