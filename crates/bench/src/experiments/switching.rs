//! Switching-cost accounting under a drifting workload
//! (`BENCH_switching.json`).
//!
//! The paper's central tension (§2.2) is that changing the deployed expert
//! is not free: the cache was populated under the old policy, so every
//! switch is followed by a transient hit-ratio dip while the content
//! turns over. This experiment measures that cost directly from the
//! fleet's own instrumentation: per-shard Darwin controllers serve a
//! three-phase drift trace (image-heavy → download-heavy → image-heavy),
//! and every expert switch opens a [`darwin_obs::SwitchCostTracker`]
//! window that journals a `SwitchCost` event — pre-switch baseline hit
//! ratio, worst trailing dip inside the window, and how many requests it
//! took to recover to baseline (if the window was long enough).
//!
//! Output: a console table, `<out>/switching.csv`, and
//! `<out>/BENCH_switching.json` with one row per closed switch window plus
//! fleet-level aggregates.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin::{DarwinModel, Expert, ExpertGrid, OfflineConfig, OfflineTrainer, OnlineConfig};
use darwin_cache::CacheConfig;
use darwin_nn::TrainConfig;
use darwin_obs::EventKind;
use darwin_shard::{Backpressure, FleetConfig, HashRouter, ShardedFleet};
use darwin_testbed::DarwinDriver;
use darwin_trace::{concat_traces, MixSpec, Trace, TraceGenerator, TrafficClass};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;

/// Shards (= independent Darwin controllers) serving the drift trace.
const SHARDS: usize = 2;

/// One closed switch-cost window (`BENCH_switching.json` row).
#[derive(Debug, Clone, Serialize)]
pub struct SwitchRow {
    /// Shard whose controller switched.
    pub shard: u32,
    /// Per-shard request sequence at which the window closed.
    pub seq: u64,
    /// Expert index switched *to*.
    pub expert: u32,
    /// Trailing hit ratio over the pre-switch window.
    pub baseline: f64,
    /// Worst `baseline − trailing` dip observed post-switch (≥ 0).
    pub dip: f64,
    /// Requests from the switch until trailing hit ratio recovered to
    /// baseline; `null` when it never did inside the window.
    pub recovery_requests: Option<u64>,
    /// Post-switch observation window, in requests.
    pub window: u64,
}

/// The full `BENCH_switching.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct SwitchingBench {
    /// Experiment name.
    pub experiment: String,
    /// Scale factor the trace length derives from.
    pub scale: usize,
    /// Requests in the drift trace.
    pub requests: usize,
    /// Shard / controller count.
    pub shards: usize,
    /// Expert switches journaled across the fleet.
    pub expert_switches: usize,
    /// Closed switch-cost windows (≤ `expert_switches`; a switch inside an
    /// open window preempts it).
    pub switch_windows: usize,
    /// Mean dip depth across closed windows.
    pub mean_dip: f64,
    /// Worst dip depth across closed windows.
    pub max_dip: f64,
    /// Fraction of closed windows that recovered to baseline in-window.
    pub recovered_frac: f64,
    /// Per-window measurements.
    pub rows: Vec<SwitchRow>,
}

/// A small dedicated offline model: 4 experts, 2 clusters — enough expert
/// diversity that the per-phase optimum moves and the bandit actually
/// switches, cheap enough to train inside the benchmark.
fn model(scale: &Scale) -> Arc<DarwinModel> {
    let cfg = OfflineConfig {
        // Deliberately contrasty grid: small-object-only admission wins when
        // the mix is image-heavy (8 KB median), large-size admission wins
        // when it is download-heavy (200 KB median) — so the per-phase
        // optimum moves and the bandit has a real decision to make.
        grid: ExpertGrid::new(vec![
            Expert::new(1, 20),
            Expert::new(4, 20),
            Expert::new(1, 1000),
            Expert::new(4, 1000),
        ]),
        hoc_bytes: 2 * 1024 * 1024,
        nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
        n_clusters: 2,
        // Train-time features must match what the online 500-request warm-up
        // will estimate, or the cluster lookup misclassifies every phase.
        feature_prefix_requests: 500,
        ..OfflineConfig::default()
    };
    let traces: Vec<Trace> = (0..4)
        .map(|i| {
            TraceGenerator::new(
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 3.0),
                10 + i as u64,
            )
            .generate(10_000 * scale.factor())
        })
        .collect();
    Arc::new(OfflineTrainer::new(cfg).train(&traces))
}

/// Three stationary phases with an abrupt mix change at each seam — the
/// §2.1 "rapidly changing traffic mix" that forces re-identification.
fn drift_trace(scale: &Scale) -> Trace {
    let phase = 24_000 * scale.factor();
    let phases: Vec<Trace> = [(0.97, 71u64), (0.03, 72), (0.97, 73)]
        .iter()
        .map(|&(ratio, seed)| {
            TraceGenerator::new(
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), ratio),
                seed,
            )
            .generate(phase)
        })
        .collect();
    concat_traces(&phases)
}

/// Runs the drift replay and writes the table, CSV and
/// `BENCH_switching.json`.
pub fn run(scale: &Scale, out: &Path) {
    let model = model(scale);
    let trace = drift_trace(scale);
    let n = trace.len();
    // Each shard sees ~half the trace; epochs short enough that every drift
    // phase spans at least one re-identification round per shard.
    let online = OnlineConfig {
        epoch_requests: 6_000 * scale.factor(),
        warmup_requests: 500 * scale.factor(),
        round_requests: 200 * scale.factor(),
        ..OnlineConfig::default()
    };

    let mut fleet = ShardedFleet::new(
        FleetConfig {
            shards: SHARDS,
            queue_capacity: 8192,
            batch: 256,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: Default::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        },
        CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() },
        Box::new(HashRouter),
        {
            let model = Arc::clone(&model);
            move |_| DarwinDriver::new(Arc::clone(&model), online)
        },
    );
    let handle = fleet.metrics_handle();
    fleet.submit_trace(&trace);
    fleet.finish();

    let mut expert_switches = 0usize;
    let mut rows: Vec<SwitchRow> = Vec::new();
    for (shard, journal) in handle.journals() {
        for ev in &journal.events {
            match &ev.kind {
                EventKind::ExpertSwitch { .. } => expert_switches += 1,
                EventKind::SwitchCost { expert, baseline, dip, recovery, window } => {
                    rows.push(SwitchRow {
                        shard,
                        seq: ev.seq,
                        expert: *expert,
                        baseline: *baseline,
                        dip: *dip,
                        recovery_requests: *recovery,
                        window: *window,
                    });
                }
                _ => {}
            }
        }
    }
    rows.sort_by_key(|r| (r.shard, r.seq));
    assert!(expert_switches > 0, "the drift trace must force at least one expert switch");
    assert!(!rows.is_empty(), "every switch opens a cost window that eventually closes");

    let closed = rows.len();
    let mean_dip = rows.iter().map(|r| r.dip).sum::<f64>() / closed as f64;
    let max_dip = rows.iter().map(|r| r.dip).fold(0.0, f64::max);
    let recovered = rows.iter().filter(|r| r.recovery_requests.is_some()).count();

    let mut table = Report::new(
        "switching",
        "Hit-ratio cost of expert switches under drift",
        &["shard", "seq", "expert", "baseline", "dip", "recovery", "window"],
        out,
    );
    for r in &rows {
        table.row(&[
            r.shard.to_string(),
            r.seq.to_string(),
            r.expert.to_string(),
            f4(r.baseline),
            f4(r.dip),
            r.recovery_requests.map_or("-".into(), |v| v.to_string()),
            r.window.to_string(),
        ]);
    }
    table.finish().expect("write switching.csv");

    let bench = SwitchingBench {
        experiment: "switching".into(),
        scale: scale.factor(),
        requests: n,
        shards: SHARDS,
        expert_switches,
        switch_windows: closed,
        mean_dip,
        max_dip,
        recovered_frac: recovered as f64 / closed as f64,
        rows,
    };
    std::fs::create_dir_all(out).expect("create output dir");
    let json = serde_json::to_string_pretty(&bench).expect("serialize BENCH_switching");
    let path = out.join("BENCH_switching.json");
    std::fs::write(&path, &json).expect("write BENCH_switching.json");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_has_expected_shape() {
        let doc = SwitchingBench {
            experiment: "switching".into(),
            scale: 1,
            requests: 72_000,
            shards: SHARDS,
            expert_switches: 3,
            switch_windows: 2,
            mean_dip: 0.05,
            max_dip: 0.09,
            recovered_frac: 0.5,
            rows: vec![SwitchRow {
                shard: 0,
                seq: 25_000,
                expert: 2,
                baseline: 0.41,
                dip: 0.09,
                recovery_requests: None,
                window: 4_096,
            }],
        };
        let s = serde_json::to_string_pretty(&doc).unwrap();
        assert!(s.contains("\"experiment\""));
        assert!(s.contains("switch_windows"));
        assert!(s.contains("recovery_requests"));
        assert!(s.contains("null"), "unrecovered windows serialize as null");
    }

    #[test]
    fn drift_trace_has_three_phases() {
        let t = drift_trace(&Scale::new(1));
        assert_eq!(t.len(), 3 * 24_000);
        // Timestamps are globally monotone after concatenation.
        assert!(t.requests().windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }
}
