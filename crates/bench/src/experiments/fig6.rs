//! Figure 6: Darwin customized to other objectives (§6.3).
//!
//! * 6a — minimizing the HOC byte miss ratio (paper: 0.37–11.28 % BMR
//!   reduction vs static experts);
//! * 6b — maximizing OHR − DiskWrite/#Requests (paper: 7.47–96.67 %
//!   improvement).
//!
//! Per §6.3 only two things change: cluster→expert sets are re-ranked under
//! the new metric, and the new metric is the online reward — the OHR
//! cross-expert predictors are reused, converting predicted hit rates into
//! byte-level estimates with the observed bucketized size distribution.

use crate::corpus::SharedContext;
use crate::report::{f4, Report};
use crate::runs;
use darwin::offline::OfflineTrainer;
use darwin_cache::Objective;
use std::path::Path;
use std::sync::Arc;

/// Runs both Fig 6 experiments.
pub fn run(ctx: &SharedContext, out: &Path) {
    run_objective(ctx, Objective::HocBmr, "fig6a", "Fig 6a: HOC byte miss ratio (lower is better)", out);
    run_objective(
        ctx,
        Objective::combined_default(),
        "fig6b",
        "Fig 6b: OHR - disk-writes objective (higher is better)",
        out,
    );
}

fn run_objective(ctx: &SharedContext, objective: Objective, name: &str, title: &str, out: &Path) {
    // Retrain the model under the new objective, reusing the evaluations
    // (the "two slight modifications" of §6.3).
    let mut cfg = ctx.offline_cfg.clone();
    cfg.objective = objective;
    let trainer = OfflineTrainer::new(cfg);
    let model = Arc::new(trainer.train_from_evaluations(&ctx.train_evals));

    let cache = ctx.scale.cache_config();
    let picks = ctx.ensemble_indices();
    let mut rep = Report::new(
        name,
        title,
        &["trace", "darwin", "best_static", "worst_static", "improvement_vs_mean_static_pct"],
        out,
    );
    let mut improvements = Vec::new();
    for &ti in &picks {
        let trace = &ctx.corpus.online_test[ti];
        let report = darwin::run_darwin(&model, &ctx.scale.online_config(), trace, &cache);
        let d = objective.report_value(&report.metrics);

        // Static expert metric values, from the stored per-expert metrics.
        let statics: Vec<f64> =
            ctx.online_evals[ti].metrics.iter().map(|m| objective.report_value(m)).collect();
        let s = runs::Stats::of(&statics);
        // For BMR smaller is better: improvement = (static − darwin)/static.
        let better_is_lower = matches!(objective, Objective::HocBmr);
        let imp = if better_is_lower {
            runs::improvement_pct(s.mean, d) // positive when darwin lower
        } else {
            runs::improvement_pct(d, s.mean)
        };
        improvements.push(imp);
        let (best, worst) = if better_is_lower { (s.min, s.max) } else { (s.max, s.min) };
        rep.row(&[format!("mix{ti}"), f4(d), f4(best), f4(worst), format!("{imp:.2}")]);
    }
    rep.finish().expect("write fig6");
    let s = runs::Stats::of(&improvements);
    println!(
        "[{name}] improvement vs mean static: min {:.2}%  median {:.2}%  max {:.2}%",
        s.min, s.median, s.max
    );
}
