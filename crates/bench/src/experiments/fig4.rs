//! Figure 4: Darwin vs baselines — OHR robustness to traffic changes.
//!
//! * 4a — simulation at the base ("100 MB") cache size over the ensemble set
//!   (one online trace per distinct hindsight-best static expert).
//! * 4b — same at the 5×-scaled ("500 MB") cache size with 5×-scaled traces
//!   and size thresholds.
//! * 4c — prototype (testbed simulation) at low concurrency.
//!
//! Paper headline: Darwin improves OHR by 3–43 % against baselines; no
//! static expert wins on every trace.

use crate::corpus::SharedContext;
use crate::report::{f4, Report};
use crate::runs::{self, tuning_sample, BaselineSuite};
use crate::scale::Scale;
use darwin::offline::OfflineTrainer;
use darwin::ExpertGrid;
use darwin_testbed::{DarwinDriver, StaticDriver, Testbed, TestbedConfig};
use darwin_trace::{concat_traces, scale_trace};
use std::path::Path;
use std::sync::Arc;

/// Fig 4a: base cache size.
pub fn run_a(ctx: &SharedContext, out: &Path) {
    run_sim_comparison(
        ctx,
        &ctx.scale,
        1,
        "fig4a",
        "Fig 4a: OHR improvement of Darwin vs baselines (base cache)",
        out,
    );
}

/// Fig 4b: 5× cache with 5×-scaled traces (paper's 500 MB study).
pub fn run_b(ctx: &SharedContext, out: &Path) {
    // Build a scaled context: scale traces and thresholds by 5, retrain.
    eprintln!("[fig4b] building 5x-scaled corpus and model ...");
    let factor = 5u64;
    let scaled_train: Vec<_> = ctx
        .corpus
        .offline_train
        .iter()
        .enumerate()
        .map(|(i, t)| scale_trace(t, factor as f64, 0.2, 9000 + i as u64))
        .collect();
    let scaled_online: Vec<_> = ctx
        .corpus
        .online_test
        .iter()
        .enumerate()
        .map(|(i, t)| scale_trace(t, factor as f64, 0.2, 9500 + i as u64))
        .collect();

    let mut cfg = SharedContext::offline_config(&ctx.scale, false);
    cfg.grid = ExpertGrid::paper_grid_scaled(factor);
    cfg.hoc_bytes = ctx.scale.hoc_bytes() * factor;
    let trainer = OfflineTrainer::new(cfg.clone());
    let train_evals = trainer.evaluate_corpus(&scaled_train);
    let online_evals = trainer.evaluate_corpus(&scaled_online);
    let model = Arc::new(trainer.train_from_evaluations(&train_evals));

    // Ensemble over the scaled traces.
    let mut seen = Vec::new();
    let mut picks = Vec::new();
    for (i, ev) in online_evals.iter().enumerate() {
        let b = ev.best_expert();
        if !seen.contains(&b) {
            seen.push(b);
            picks.push(i);
        }
    }

    let cache = ctx.scale.cache_config_scaled(factor);
    let suite =
        BaselineSuite::build(&ctx.scale, &cfg.grid, &train_evals, &tuning_sample(&scaled_train), &cache);
    let mut rep = Report::new(
        "fig4b",
        "Fig 4b: OHR improvement of Darwin vs baselines (5x cache)",
        &["trace", "baseline", "baseline_ohr", "darwin_ohr", "improvement_pct"],
        out,
    );
    // Per-pick comparisons are independent; fan them out and aggregate the
    // report rows in pick order afterwards (the inner baseline suite runs
    // inline inside each worker).
    let per_pick = darwin_parallel::par_map(0, &picks, |&ti| {
        let trace = &scaled_online[ti];
        let d = runs::darwin_metrics(&model, &ctx.scale, trace, &cache).hoc_ohr();
        let mut rows: Vec<(String, f64)> = Vec::new();
        // Static experts (from the evaluations).
        for (e, &ohr) in online_evals[ti].hit_rates.iter().enumerate() {
            rows.push((runs::expert_label(&cfg.grid, e), ohr));
        }
        for (label, m) in suite.run_all(trace, &cache) {
            rows.push((label, m.hoc_ohr()));
        }
        (ti, d, rows)
    });
    let mut improvements: Vec<(String, Vec<f64>)> = Vec::new();
    for (ti, d, rows) in per_pick {
        for (label, ohr) in rows {
            let imp = runs::improvement_pct(d, ohr);
            rep.row(&[format!("mix{ti}"), label.clone(), f4(ohr), f4(d), format!("{imp:.2}")]);
            match improvements.iter_mut().find(|(l, _)| *l == label) {
                Some((_, v)) => v.push(imp),
                None => improvements.push((label, vec![imp])),
            }
        }
    }
    rep.finish().expect("write fig4b");
    summarize("fig4b_summary", "Fig 4b summary", improvements, out);
}

/// Fig 4c: prototype (testbed) comparison at low concurrency.
pub fn run_c(ctx: &SharedContext, out: &Path) {
    let picks = ctx.ensemble_indices();
    let parts: Vec<_> = picks.iter().take(4).map(|&i| ctx.corpus.online_test[i].clone()).collect();
    let workload = concat_traces(&parts);
    let cache = ctx.scale.cache_config();
    let tb = Testbed::new(TestbedConfig { concurrency: 8, ..TestbedConfig::default() });

    let mut rep = Report::new(
        "fig4c",
        "Fig 4c: prototype OHR, Darwin vs static experts (low concurrency)",
        &["driver", "hoc_ohr", "goodput_gbps", "mean_fb_latency_ms"],
        out,
    );
    let mut darwin_driver = DarwinDriver::new(Arc::clone(&ctx.model), ctx.scale.online_config());
    let r = tb.run(&workload, &cache, &mut darwin_driver);
    rep.row(&[
        "darwin".into(),
        f4(r.cache.hoc_ohr()),
        format!("{:.3}", r.goodput_gbps),
        format!("{:.1}", r.latency.clone().mean() / 1000.0),
    ]);
    // Each static expert's testbed run is independent; fan out and report
    // in expert order.
    let statics = runs::representative_static(ctx.model.grid());
    let static_runs = darwin_parallel::par_map(0, &statics, |e| {
        let mut d = StaticDriver::new(e.policy);
        (e.label(), tb.run(&workload, &cache, &mut d))
    });
    for (label, r) in static_runs {
        rep.row(&[
            label,
            f4(r.cache.hoc_ohr()),
            format!("{:.3}", r.goodput_gbps),
            format!("{:.1}", r.latency.clone().mean() / 1000.0),
        ]);
    }
    rep.finish().expect("write fig4c");
}

/// Shared Fig-4a-style simulation comparison.
fn run_sim_comparison(
    ctx: &SharedContext,
    scale: &Scale,
    cache_mult: u64,
    name: &str,
    title: &str,
    out: &Path,
) {
    let picks = ctx.ensemble_indices();
    let cache = scale.cache_config_scaled(cache_mult);
    let suite = BaselineSuite::build(
        scale,
        ctx.model.grid(),
        &ctx.train_evals,
        &tuning_sample(&ctx.corpus.offline_train),
        &cache,
    );
    let mut rep = Report::new(
        name,
        title,
        &["trace", "baseline", "baseline_ohr", "darwin_ohr", "improvement_pct"],
        out,
    );
    // One work item per ensemble pick: Darwin plus every baseline on that
    // trace. Aggregation happens in pick order, so reports are identical at
    // any thread count.
    let per_pick = darwin_parallel::par_map(0, &picks, |&ti| {
        let trace = &ctx.corpus.online_test[ti];
        let d = runs::darwin_metrics(&ctx.model, scale, trace, &cache).hoc_ohr();
        let mut rows: Vec<(String, f64)> = Vec::new();
        for (e, &ohr) in ctx.online_evals[ti].hit_rates.iter().enumerate() {
            rows.push((runs::expert_label(ctx.model.grid(), e), ohr));
        }
        for (label, m) in suite.run_all(trace, &cache) {
            rows.push((label, m.hoc_ohr()));
        }
        (ti, d, rows)
    });
    let mut improvements: Vec<(String, Vec<f64>)> = Vec::new();
    for (ti, d, rows) in per_pick {
        for (label, ohr) in rows {
            let imp = runs::improvement_pct(d, ohr);
            rep.row(&[format!("mix{ti}"), label.clone(), f4(ohr), f4(d), format!("{imp:.2}")]);
            match improvements.iter_mut().find(|(l, _)| *l == label) {
                Some((_, v)) => v.push(imp),
                None => improvements.push((label, vec![imp])),
            }
        }
    }
    rep.finish().expect("write fig4");
    summarize(&format!("{name}_summary"), &format!("{title} — summary"), improvements, out);
}

fn summarize(name: &str, title: &str, improvements: Vec<(String, Vec<f64>)>, out: &Path) {
    let mut rep = Report::new(
        name,
        title,
        &["baseline", "min_imp_pct", "median_imp_pct", "mean_imp_pct", "max_imp_pct"],
        out,
    );
    for (label, v) in improvements {
        let s = runs::Stats::of(&v);
        rep.row(&[
            label,
            format!("{:.2}", s.min),
            format!("{:.2}", s.median),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.max),
        ]);
    }
    rep.finish().expect("write fig4 summary");
}
