//! Appendix figures 8–11.
//!
//! * Fig 8 — feature convergence over the *online*-length traces (the paper
//!   confirms the 3 %-of-trace warm-up also suffices at 100 M scale).
//! * Fig 9a — average expert reduction (%) vs cluster threshold θ;
//!   9b — average fraction of a cluster set's experts that are within θ% of
//!   a member trace's best.
//! * Fig 10 — out-of-distribution predictor order accuracy: test mixes with
//!   class parameters the training corpus never saw.
//! * Fig 11 — expert reduction when experts use three knobs
//!   (frequency, size, recency; 36 experts, 90 % reduction at θ = 1).

use crate::corpus::SharedContext;
use crate::experiments::fig5::order_accuracy;
use crate::report::{f4, Report};
use crate::runs;
use darwin::offline::OfflineTrainer;
use darwin::{DarwinModel, ExpertGrid};
use darwin_cache::Objective;
use darwin_features::{max_relative_error, FeatureExtractor};
use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
use std::path::Path;

/// Fig 8: convergence on long traces.
pub fn run_fig8(ctx: &SharedContext, out: &Path) {
    let mut rep = Report::new(
        "fig8",
        "Fig 8: feature convergence on online-length traces",
        &["prefix_pct", "mean_err_pct", "max_err_pct"],
        out,
    );
    for frac in [0.01, 0.03, 0.1, 0.3, 0.6] {
        let mut errs = Vec::new();
        for t in &ctx.corpus.online_test {
            let full = FeatureExtractor::extract(t);
            let prefix = FeatureExtractor::extract(&t.slice(0, (t.len() as f64 * frac) as usize));
            errs.push(max_relative_error(&prefix, &full));
        }
        let s = runs::Stats::of(&errs);
        rep.row(&[format!("{:.0}", frac * 100.0), format!("{:.2}", s.mean), format!("{:.2}", s.max)]);
    }
    rep.finish().expect("write fig8");
}

/// Fig 9: expert reduction and within-θ fraction vs θ.
pub fn run_fig9(ctx: &SharedContext, out: &Path) {
    let trainer = OfflineTrainer::new(ctx.offline_cfg.clone());
    let n_experts = ctx.offline_cfg.grid.len() as f64;
    let mut rep = Report::new(
        "fig9",
        "Fig 9: expert reduction vs theta",
        &["theta_pct", "avg_reduction_pct", "avg_within_theta_fraction"],
        out,
    );
    for theta in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let (assignment, sets) = trainer.cluster_expert_sets(&ctx.train_evals, theta, Objective::HocOhr);
        let sizes: Vec<f64> = assignment.iter().map(|&c| sets[c].len() as f64).collect();
        let s = runs::Stats::of(&sizes);
        let reduction = 100.0 * (1.0 - s.mean / n_experts);
        // 9b: for each trace, the fraction of its cluster set's experts that
        // are within θ% of the trace's own best reward.
        let mut fracs = Vec::new();
        for (ev, &c) in ctx.train_evals.iter().zip(&assignment) {
            let rewards = ev.rewards_under(Objective::HocOhr);
            let best = rewards.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let floor = best - theta / 100.0 * best.abs();
            let within = sets[c].iter().filter(|&&e| rewards[e] >= floor).count() as f64;
            fracs.push(within / sets[c].len().max(1) as f64);
        }
        let f = runs::Stats::of(&fracs);
        rep.row(&[format!("{theta}"), format!("{reduction:.1}"), f4(f.mean)]);
    }
    rep.finish().expect("write fig9");
}

/// Fig 10: out-of-distribution predictor accuracy. OOD traces perturb the
/// class models (different Zipf skew, different size medians) and add a Web
/// class the corpus never contained.
pub fn run_fig10(ctx: &SharedContext, all_pairs_model: &DarwinModel, out: &Path) {
    let trainer = OfflineTrainer::new(ctx.offline_cfg.clone());
    let len = ctx.scale.offline_trace_len();

    // Perturbed classes.
    let mut image = TrafficClass::image();
    image.zipf_alpha = 0.9;
    image.sizes.mu = (12.0f64 * 1024.0).ln();
    let mut download = TrafficClass::download();
    download.zipf_alpha = 0.95;
    download.sizes.mu = (400.0f64 * 1024.0).ln();
    let web = TrafficClass::web();

    // Mild OOD (the paper's setting): the same two classes at mix ratios
    // the 11-point training sweep never contained.
    let mild_traces: Vec<_> = [0.15, 0.37, 0.62, 0.85]
        .iter()
        .enumerate()
        .map(|(i, &share)| {
            let spec = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), share);
            TraceGenerator::new(spec, 7700 + i as u64).generate(len)
        })
        .collect();
    let mild_evals = trainer.evaluate_corpus(&mild_traces);

    // Hard OOD: perturbed class parameters and an entirely new Web class.
    let ood_traces: Vec<_> = (0..6)
        .map(|i| {
            let spec = match i % 3 {
                0 => MixSpec::two_class(image.clone(), download.clone(), 0.3 + 0.1 * i as f64),
                1 => MixSpec::two_class(image.clone(), web.clone(), 0.5),
                _ => {
                    MixSpec::new(vec![image.clone(), download.clone(), web.clone()], vec![0.4, 0.3, 0.3])
                }
            };
            TraceGenerator::new(spec, 7000 + i as u64).generate(len)
        })
        .collect();
    let ood_evals = trainer.evaluate_corpus(&ood_traces);

    let n = ctx.offline_cfg.grid.len();
    let mut rep = Report::new(
        "fig10",
        "Fig 10: in-distribution vs out-of-distribution order accuracy (k=1%)",
        &["test_set", "mean_acc", "frac_above_80pct"],
        out,
    );
    for (label, evals) in [
        ("in-dist", &ctx.test_evals),
        ("ood-mild-unseen-ratios", &mild_evals),
        ("ood-hard-new-classes", &ood_evals),
    ] {
        let mut accs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    accs.push(order_accuracy(all_pairs_model, i, j, evals, 1.0));
                }
            }
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        let above = accs.iter().filter(|&&a| a > 0.8).count() as f64 / accs.len() as f64;
        rep.row(&[label.to_string(), f4(mean), f4(above)]);
    }
    rep.finish().expect("write fig10");
}

/// Fig 11: three-knob (f, s, recency) expert reduction.
pub fn run_fig11(ctx: &SharedContext, out: &Path) {
    let mut cfg = ctx.offline_cfg.clone();
    cfg.grid = ExpertGrid::three_knob_grid();
    let trainer = OfflineTrainer::new(cfg.clone());
    eprintln!("[fig11] evaluating 3-knob grid on offline corpus ...");
    let evals = trainer.evaluate_corpus(&ctx.corpus.offline_train);
    let n_experts = cfg.grid.len() as f64;
    let mut rep = Report::new(
        "fig11",
        "Fig 11: expert reduction with 3 knobs (f, s, recency)",
        &["theta_pct", "avg_set_size", "avg_reduction_pct"],
        out,
    );
    for theta in [1.0, 2.0, 5.0] {
        let (assignment, sets) = trainer.cluster_expert_sets(&evals, theta, Objective::HocOhr);
        let sizes: Vec<f64> = assignment.iter().map(|&c| sets[c].len() as f64).collect();
        let s = runs::Stats::of(&sizes);
        rep.row(&[
            format!("{theta}"),
            format!("{:.1}", s.mean),
            format!("{:.1}", 100.0 * (1.0 - s.mean / n_experts)),
        ]);
    }
    rep.finish().expect("write fig11");
}
