//! Figure 7: prototype latency and throughput (§6.4).
//!
//! * 7a — first-byte latency CDF over a concatenated four-trace workload
//!   with different best experts; Darwin's better OHR lowers the CDF's
//!   origin-round-trip tail.
//! * 7b — peak application throughput vs concurrency; both Darwin and the
//!   static (f=2, s=2 KB) expert peak at an interior concurrency (paper:
//!   ~200 clients; Darwin 10.4 Gbps vs static 9.3 Gbps), because lock
//!   contention grows with concurrency while hit rate amortizes origin
//!   round trips.

use crate::corpus::SharedContext;
use crate::report::Report;
use darwin::Expert;
use darwin_testbed::{DarwinDriver, StaticDriver, Testbed, TestbedConfig};
use darwin_trace::concat_traces;
use std::path::Path;
use std::sync::Arc;

/// Fig 7a: first-byte latency CDF, Darwin vs a static expert.
pub fn run_a(ctx: &SharedContext, out: &Path) {
    // Four phases with different best experts, as in the paper. Run at a
    // concurrency where the shared disk/origin queues carry load: with the
    // testbed unloaded, HOC-vs-DC hits cost nearly the same and the CDF
    // degenerates to the two propagation plateaus.
    let picks = ctx.ensemble_indices();
    let parts: Vec<_> = picks.iter().rev().take(4).map(|&i| ctx.corpus.online_test[i].clone()).collect();
    let workload = concat_traces(&parts);
    let cache = ctx.scale.cache_config();
    let tb = Testbed::new(TestbedConfig { concurrency: 200, ..TestbedConfig::default() });

    let mut rep = Report::new(
        "fig7a",
        "Fig 7a: first-byte latency percentiles (ms)",
        &["driver", "p10", "p25", "p50", "p75", "p90", "p99", "mean"],
        out,
    );
    let mut darwin_driver = DarwinDriver::new(Arc::clone(&ctx.model), ctx.scale.online_config());
    let rd = tb.run(&workload, &cache, &mut darwin_driver);
    let mut static_driver = StaticDriver::new(Expert::new(2, 100).policy);
    let rs = tb.run(&workload, &cache, &mut static_driver);

    for (label, mut lat) in
        [("darwin".to_string(), rd.latency.clone()), ("f2s100".to_string(), rs.latency.clone())]
    {
        rep.row(&[
            label,
            format!("{:.1}", lat.percentile(10.0) as f64 / 1000.0),
            format!("{:.1}", lat.percentile(25.0) as f64 / 1000.0),
            format!("{:.1}", lat.percentile(50.0) as f64 / 1000.0),
            format!("{:.1}", lat.percentile(75.0) as f64 / 1000.0),
            format!("{:.1}", lat.percentile(90.0) as f64 / 1000.0),
            format!("{:.1}", lat.percentile(99.0) as f64 / 1000.0),
            format!("{:.1}", lat.mean() / 1000.0),
        ]);
    }
    rep.finish().expect("write fig7a");

    // Full CDF series for plotting.
    let mut cdf =
        Report::new("fig7a_cdf", "Fig 7a: latency CDF series", &["driver", "latency_ms", "cdf"], out);
    for (label, mut lat) in [("darwin".to_string(), rd.latency), ("f2s100".to_string(), rs.latency)] {
        for (us, frac) in lat.cdf(50) {
            cdf.row(&[label.clone(), format!("{:.2}", us as f64 / 1000.0), format!("{frac:.4}")]);
        }
    }
    cdf.finish().expect("write fig7a cdf");
}

/// Fig 7b: throughput vs concurrency sweep.
pub fn run_b(ctx: &SharedContext, out: &Path) {
    // Use the download-heavy end of the ensemble: its larger objects are
    // what push the shared disk and origin link toward saturation, making
    // the hit-rate → throughput coupling visible (as in the paper, whose
    // testbed served production-sized media objects).
    let picks = ctx.ensemble_indices();
    let parts: Vec<_> = picks.iter().rev().take(2).map(|&i| ctx.corpus.online_test[i].clone()).collect();
    let workload = concat_traces(&parts);
    let cache = ctx.scale.cache_config();

    let mut rep = Report::new(
        "fig7b",
        "Fig 7b: goodput (Gbps) vs concurrency",
        &["concurrency", "darwin_gbps", "darwin_ohr", "static_gbps", "static_ohr"],
        out,
    );
    // The paper compares against the static (f=2, s=2 KB) expert.
    for concurrency in [1usize, 4, 16, 50, 100, 200, 400, 800, 1600, 3200] {
        let tb = Testbed::new(TestbedConfig { concurrency, ..TestbedConfig::default() });
        let mut dd = DarwinDriver::new(Arc::clone(&ctx.model), ctx.scale.online_config());
        let rd = tb.run(&workload, &cache, &mut dd);
        let mut sd = StaticDriver::new(Expert::new(2, 2).policy);
        let rs = tb.run(&workload, &cache, &mut sd);
        rep.row(&[
            concurrency.to_string(),
            format!("{:.3}", rd.goodput_gbps),
            format!("{:.4}", rd.cache.hoc_ohr()),
            format!("{:.3}", rs.goodput_gbps),
            format!("{:.4}", rs.cache.hoc_ohr()),
        ]);
    }
    rep.finish().expect("write fig7b");
}
