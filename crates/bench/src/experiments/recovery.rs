//! Warm-vs-cold restart recovery: hit-ratio recovery curves after a shard
//! death (`BENCH_recovery.json`).
//!
//! One shard serves a two-class trace and is killed by a scripted
//! [`FaultPlan`] panic exactly at a checkpoint boundary. Two scenarios
//! differ only in `checkpoint_every`:
//!
//! * `warm` — checkpointing on: the respawn restores the boundary
//!   checkpoint, so HOC/DC contents, sketch counts and policy survive and
//!   the hit ratio barely dips.
//! * `cold` — checkpointing off: the respawn starts from an empty cache and
//!   re-pays the full warm-up, the regime PR 4 left every restart in.
//!
//! The plotted curves are windowed hit ratios from a *deterministic
//! sequential replay* of the same scenario (fleet ≡ sequential replay by the
//! equivalence theorem, `darwin-shard/tests/equivalence.rs` and
//! `tests/restore.rs`), so the curve is a property of the trace — no thread
//! timing in the figure. The real threaded fleet runs each scenario too, and
//! its final cumulative metrics and warm/cold restart counters must match
//! the replay exactly.
//!
//! **Recovery point**: the first post-crash window whose hit ratio reaches
//! 95 % of the clean run's steady-state hit ratio. The experiment asserts
//! warm recovery takes strictly fewer post-crash requests than cold — the
//! acceptance criterion of the warm-recovery subsystem.
//!
//! Output: a console table, `<out>/recovery.csv`, and
//! `<out>/BENCH_recovery.json`.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer, ThresholdPolicy};
use darwin_shard::{
    Backpressure, FaultEvent, FaultKind, FaultPlan, FleetConfig, HashRouter, ShardedFleet,
};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use serde::Serialize;
use std::path::Path;

/// Fraction of steady-state hit ratio a post-crash window must reach to
/// count as recovered.
pub const RECOVERY_THRESHOLD: f64 = 0.95;

/// One point of a recovery curve: windowed (not cumulative) hit ratio over
/// the window ending at per-shard sequence `seq`.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryPoint {
    /// Per-shard request sequence number at the window's end.
    pub seq: u64,
    /// HOC object hit ratio within the window.
    pub ohr: f64,
}

/// One scenario's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryScenario {
    /// Scenario name (`warm`, `cold`).
    pub scenario: String,
    /// Supervisor restarts the threaded fleet granted (always 1).
    pub restarts: u32,
    /// Restarts that resumed from a checkpoint (1 warm, 0 cold).
    pub warm_restarts: u32,
    /// Post-crash requests until a window first reached
    /// [`RECOVERY_THRESHOLD`] × steady-state hit ratio; `None` if the tail
    /// ended first.
    pub recovery_requests: Option<u64>,
    /// Cumulative hit ratio over the whole run, crash included.
    pub final_ohr: f64,
    /// Windowed hit-ratio curve over the full run (the crash sits at
    /// `kill_at`; post-crash windows are the recovery curve).
    pub curve: Vec<RecoveryPoint>,
}

/// The full `BENCH_recovery.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryBench {
    /// Experiment name.
    pub experiment: String,
    /// Scale factor the trace length derives from.
    pub scale: usize,
    /// Requests in the benchmark trace.
    pub requests: usize,
    /// Shards in the fleet (1: the scenario is one node's recovery).
    pub shards: usize,
    /// Per-shard sequence number of the scripted kill (a checkpoint
    /// boundary, so the warm restore is lossless).
    pub kill_at: u64,
    /// Checkpoint cadence of the warm scenario, requests.
    pub checkpoint_every: u64,
    /// Window length of the curves, requests.
    pub window: u64,
    /// Steady-state hit ratio of the crash-free run (windowed over its last
    /// quarter).
    pub steady_ohr: f64,
    /// Recovery threshold as a fraction of `steady_ohr`.
    pub recovery_threshold: f64,
    /// Per-scenario measurements.
    pub rows: Vec<RecoveryScenario>,
}

/// Outcome of one deterministic sequential replay.
struct ScenarioReplay {
    /// Cumulative metrics over the whole run (all incarnations).
    total: CacheMetrics,
    /// Windowed hit-ratio curve.
    curve: Vec<RecoveryPoint>,
}

fn bench_trace(scale: &Scale) -> Trace {
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 2027)
        .generate(scale.online_trace_len() / 2)
}

fn policy() -> ThresholdPolicy {
    ThresholdPolicy::new(2, 100 * 1024)
}

/// Sequentially replays the scenario: process the trace on one
/// [`CacheServer`], checkpoint via [`CacheServer::save_state`] at each
/// boundary (when `ckpt_every` is set), and at index `kill_at` drop that
/// request and replace the server — restored from the latest checkpoint when
/// one exists, cold otherwise. `kill_at: None` is the crash-free control.
fn replay(
    cache: &CacheConfig,
    trace: &Trace,
    kill_at: Option<u64>,
    ckpt_every: Option<u64>,
    window: u64,
) -> ScenarioReplay {
    let mut server = CacheServer::new(cache.clone());
    server.set_policy(policy());
    // Metrics of incarnations lost to the crash (cold path); a warm restore
    // carries its metrics inside the checkpoint so nothing needs folding.
    let mut folded = CacheMetrics::default();
    let mut saved: Option<Vec<u8>> = None;
    let mut curve = Vec::new();
    let mut prev = CacheMetrics::default();
    let mut processed = 0u64;
    for (i, req) in trace.iter().enumerate() {
        if kill_at == Some(i as u64) {
            // The fatal request is answered `Dropped`; the next incarnation
            // starts either from the checkpoint or from nothing.
            match &saved {
                Some(frame) => {
                    server = CacheServer::restore_state(cache.clone(), frame)
                        .expect("boundary checkpoint restores");
                }
                None => {
                    folded = folded.merge(&server.metrics());
                    server = CacheServer::new(cache.clone());
                }
            }
            server.set_policy(policy());
            continue;
        }
        server.process(req);
        processed += 1;
        if let Some(every) = ckpt_every {
            if every > 0 && (i as u64 + 1).is_multiple_of(every) {
                saved = Some(server.save_state());
            }
        }
        if processed.is_multiple_of(window) {
            let cum = folded.merge(&server.metrics());
            let req_d = cum.requests - prev.requests;
            let hit_d = cum.hoc_hits - prev.hoc_hits;
            curve.push(RecoveryPoint {
                seq: i as u64 + 1,
                ohr: if req_d == 0 { 0.0 } else { hit_d as f64 / req_d as f64 },
            });
            prev = cum;
        }
    }
    ScenarioReplay { total: folded.merge(&server.metrics()), curve }
}

/// Runs one scenario through the real threaded fleet and returns its shard-0
/// outcome `(cache, restarts, warm_restarts, dropped)`.
fn fleet_run(
    cache: &CacheConfig,
    trace: &Trace,
    kill_at: u64,
    ckpt_every: Option<u64>,
) -> (CacheMetrics, u32, u32, u64) {
    let p = policy();
    let mut fleet = ShardedFleet::with_fault_plan(
        FleetConfig {
            shards: 1,
            queue_capacity: 4096,
            batch: 256,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: Default::default(),
            checkpoint_every: ckpt_every,
            shed_watermark: None,
            replicas: 0,
        },
        cache.clone(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(p),
        FaultPlan::new(vec![FaultEvent { shard: 0, at: kill_at, kind: FaultKind::Panic }]),
    );
    fleet.submit_trace(trace);
    let report = fleet.finish();
    let s0 = &report.shards[0];
    (s0.cache, s0.restarts, s0.warm_restarts, s0.dropped)
}

/// First post-crash window that reaches `threshold × steady`, as post-crash
/// request count.
fn recovery_requests(curve: &[RecoveryPoint], kill_at: u64, steady: f64, threshold: f64) -> Option<u64> {
    curve
        .iter()
        .filter(|p| p.seq > kill_at)
        .find(|p| p.ohr >= threshold * steady)
        .map(|p| p.seq - kill_at)
}

/// Runs both scenarios and writes the table, CSV and `BENCH_recovery.json`.
pub fn run(scale: &Scale, out: &Path) {
    let trace = bench_trace(scale);
    let n = trace.len();
    let cache = scale.cache_config();
    let window = (n as u64 / 50).max(500);
    // Kill at ~40% of the trace, on a checkpoint boundary, leaving a long
    // enough tail for the cold cache to visibly re-warm.
    let kill_at = (n as u64 * 2 / 5 / window) * window;
    assert!(kill_at > 0 && kill_at < n as u64);

    // Crash-free control: steady state = windowed hit ratio over the last
    // quarter of the clean run.
    let clean = replay(&cache, &trace, None, None, window);
    let q = clean.curve.len() * 3 / 4;
    let steady_ohr = {
        let tail = &clean.curve[q..];
        tail.iter().map(|p| p.ohr).sum::<f64>() / tail.len() as f64
    };

    let mut rows = Vec::new();
    for (name, ckpt_every) in [("warm", Some(window)), ("cold", None)] {
        let rep = replay(&cache, &trace, Some(kill_at), ckpt_every, window);
        let (fleet_cache, restarts, warm, dropped) = fleet_run(&cache, &trace, kill_at, ckpt_every);

        // The curve is trustworthy only because the real fleet lands on the
        // same state: cumulative metrics bitwise, one death, one drop.
        assert_eq!(fleet_cache, rep.total, "{name}: fleet ≡ sequential replay across the restart");
        assert_eq!(restarts, 1, "{name}: one supervised restart");
        assert_eq!(dropped, 1, "{name}: only the fatal request is lost");
        assert_eq!(warm, u32::from(ckpt_every.is_some()), "{name}: restart temperature");

        let recovery = recovery_requests(&rep.curve, kill_at, steady_ohr, RECOVERY_THRESHOLD);
        rows.push(RecoveryScenario {
            scenario: name.into(),
            restarts,
            warm_restarts: warm,
            recovery_requests: recovery,
            final_ohr: rep.total.hoc_ohr(),
            curve: rep.curve,
        });
    }

    // The acceptance criterion: warm reaches 95% of steady state in strictly
    // fewer post-crash requests than cold.
    let warm_rec = rows[0].recovery_requests.expect("warm restore must recover within the tail");
    // A cold run that never recovered within the tail loses trivially.
    if let Some(cold_rec) = rows[1].recovery_requests {
        assert!(
            warm_rec < cold_rec,
            "warm recovery ({warm_rec} requests) must beat cold ({cold_rec} requests)"
        );
    }

    let mut table = Report::new(
        "recovery",
        "Hit-ratio recovery after a shard death, warm vs cold restart",
        &["scenario", "restarts", "warm", "recovery_reqs", "final_ohr"],
        out,
    );
    for r in &rows {
        table.row(&[
            r.scenario.clone(),
            r.restarts.to_string(),
            r.warm_restarts.to_string(),
            r.recovery_requests.map_or_else(|| "never".into(), |v| v.to_string()),
            f4(r.final_ohr),
        ]);
    }
    table.finish().expect("write recovery.csv");

    let bench = RecoveryBench {
        experiment: "recovery".into(),
        scale: scale.factor(),
        requests: n,
        shards: 1,
        kill_at,
        checkpoint_every: window,
        window,
        steady_ohr,
        recovery_threshold: RECOVERY_THRESHOLD,
        rows,
    };
    std::fs::create_dir_all(out).expect("create output dir");
    let json = serde_json::to_string_pretty(&bench).expect("serialize BENCH_recovery");
    let path = out.join("BENCH_recovery.json");
    std::fs::write(&path, &json).expect("write BENCH_recovery.json");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace(n: usize) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), 9).generate(n)
    }

    fn tiny_cache() -> CacheConfig {
        CacheConfig::small_test()
    }

    #[test]
    fn warm_replay_is_lossless_at_a_boundary() {
        // A boundary kill with checkpointing restores the exact pre-crash
        // state, so the warm replay equals the uninterrupted replay of the
        // trace minus the one dropped request.
        let trace = tiny_trace(4_000);
        let mut reqs = trace.requests().to_vec();
        reqs.remove(2_000);
        let uninterrupted = replay(&tiny_cache(), &Trace::from_sorted(reqs), None, None, 500);
        let warm = replay(&tiny_cache(), &trace, Some(2_000), Some(500), 500);
        assert_eq!(warm.total, uninterrupted.total);
    }

    #[test]
    fn cold_replay_folds_the_dead_incarnation() {
        let trace = tiny_trace(4_000);
        let cold = replay(&tiny_cache(), &trace, Some(2_000), None, 500);
        // Counts conserve: everything but the fatal request was processed.
        assert_eq!(cold.total.requests, 3_999);
        // The windowed curve covers the whole run.
        assert_eq!(cold.curve.len(), 3_999 / 500);
    }

    #[test]
    fn recovery_point_is_first_window_at_threshold() {
        let curve = vec![
            RecoveryPoint { seq: 500, ohr: 0.4 },
            RecoveryPoint { seq: 1_000, ohr: 0.1 }, // post-crash dip
            RecoveryPoint { seq: 1_500, ohr: 0.3 },
            RecoveryPoint { seq: 2_000, ohr: 0.39 },
        ];
        assert_eq!(recovery_requests(&curve, 500, 0.4, 0.95), Some(1_500));
        assert_eq!(recovery_requests(&curve, 500, 0.6, 0.95), None);
    }

    #[test]
    fn bench_json_has_expected_shape() {
        let doc = RecoveryBench {
            experiment: "recovery".into(),
            scale: 1,
            requests: 100_000,
            shards: 1,
            kill_at: 40_000,
            checkpoint_every: 2_000,
            window: 2_000,
            steady_ohr: 0.5,
            recovery_threshold: RECOVERY_THRESHOLD,
            rows: vec![RecoveryScenario {
                scenario: "warm".into(),
                restarts: 1,
                warm_restarts: 1,
                recovery_requests: Some(2_000),
                final_ohr: 0.49,
                curve: vec![RecoveryPoint { seq: 2_000, ohr: 0.1 }],
            }],
        };
        let s = serde_json::to_string_pretty(&doc).unwrap();
        assert!(s.contains("\"experiment\""));
        assert!(s.contains("recovery_requests"));
        assert!(s.contains("steady_ohr"));
    }
}
