//! Fleet throughput scaling: requests/sec vs shard count (`BENCH_shard.json`).
//!
//! For each shard count in {1, 2, 4, 8} the experiment drives the same
//! generated trace through a [`ShardedFleet`] (hash router, blocking
//! backpressure, a static expert per shard so the serving path — not model
//! training — is what's timed; the paper's learning logic is off the
//! critical path anyway, §5) and reports two throughput figures per row:
//!
//! * **live** — wall-clock requests/sec of the threaded fleet *on this
//!   machine*, driven the way a gateway drives it: [`PRODUCERS`] concurrent
//!   ingest producers routing whole frames into per-shard runs and
//!   delivering each run with one batched queue operation. Per-request
//!   submit→verdict latency is sampled alongside (`live_p99_ms`). On fewer
//!   cores than shards this measures queue/handoff overhead, not scale-out.
//! * **critical-path** — total requests ÷ the slowest shard's sequential
//!   replay time. Because the fleet is bitwise equivalent to its sequential
//!   per-shard replays (see `darwin-shard/tests/equivalence.rs`), this is
//!   the fleet's serving time on one-core-per-shard hardware — the honest
//!   scale-out projection a single-core CI box can still measure.
//!
//! Output: a console table, `<out>/shard_throughput.csv`, and
//! `<out>/BENCH_shard.json`.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin_cache::ThresholdPolicy;
use darwin_obs::{Histogram, HistogramSnapshot};
use darwin_shard::{
    partition, run_partition, Backpressure, Envelope, FleetConfig, HashRouter, ShardedFleet, Verdict,
};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Request, Trace, TraceGenerator, TrafficClass};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Shard counts swept by the experiment.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Concurrent ingest producers driving the live measurement (the gateway
/// topology: one producer per connection).
pub const PRODUCERS: usize = 4;

/// Requests per submitted frame on the live path (one `push_batch` per
/// touched shard per frame).
const FRAME: usize = 512;

/// Repetitions per timing; the fastest is kept (standard practice — the
/// minimum is the least noise-contaminated estimate of the true cost).
const REPEATS: usize = 3;

/// One row of `BENCH_shard.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ShardRow {
    /// Shard count (= worker threads = cache servers).
    pub shards: usize,
    /// Threaded-fleet wall-clock requests/sec on this machine, with
    /// [`PRODUCERS`] concurrent frame-batched ingest producers.
    pub live_rps: f64,
    /// `live_rps` relative to the 1-shard row.
    pub live_speedup: f64,
    /// 99th-percentile submit→verdict latency of the fastest live repeat,
    /// milliseconds — nearest-rank over a `darwin-obs` log-bucketed
    /// histogram (≤3.1% relative error). Includes queueing delay, so it
    /// rises when the shards — not the ingest path — are the bottleneck.
    pub live_p99_ms: f64,
    /// Median submit→verdict latency of the fastest live repeat, ms.
    pub live_p50_ms: f64,
    /// Projected requests/sec on one-core-per-shard hardware: total requests
    /// divided by the slowest shard's sequential replay seconds (valid by
    /// the fleet-equals-sequential-replay equivalence theorem).
    pub critical_path_rps: f64,
    /// `critical_path_rps` relative to the 1-shard row.
    pub critical_path_speedup: f64,
    /// Sequential replay seconds of the slowest shard.
    pub max_shard_seconds: f64,
    /// Fleet-wide object hit ratio at this shard count.
    pub fleet_ohr: f64,
    /// Deepest queue high-water mark observed across shards.
    pub max_queue_high_water: usize,
    /// Requests dropped (always 0 under blocking backpressure).
    pub dropped: u64,
}

/// The full `BENCH_shard.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ShardBench {
    /// Experiment name.
    pub experiment: String,
    /// Scale factor the trace length derives from.
    pub scale: usize,
    /// Requests in the benchmark trace.
    pub requests: usize,
    /// Router label.
    pub router: String,
    /// Per-shard admission driver label.
    pub driver: String,
    /// CPU cores visible to this process (interprets the live numbers).
    pub cpu_cores: usize,
    /// Concurrent ingest producers behind every live measurement.
    pub producers: usize,
    /// Critical-path throughput scaling from 1 to 8 shards.
    pub scaling_1_to_8_critical_path: f64,
    /// Live throughput scaling from 1 to 8 shards on this machine.
    pub scaling_1_to_8_live: f64,
    /// Per-shard-count measurements.
    pub rows: Vec<ShardRow>,
}

fn bench_trace(scale: &Scale) -> Trace {
    // 4x the online trace length: long enough that per-request serving cost
    // dominates thread spawn/join, short enough for a CI box.
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 2024)
        .generate(4 * scale.online_trace_len())
}

fn policy() -> ThresholdPolicy {
    ThresholdPolicy::new(2, 100 * 1024)
}

/// Envelope that records its submit→verdict latency into a shared
/// lock-free [`Histogram`] — a handful of relaxed atomic adds on the hot
/// path, no allocation, no per-request slot array.
struct TimedEnvelope {
    req: Request,
    started: Instant,
    hist: Arc<Histogram>,
}

impl Envelope for TimedEnvelope {
    fn request(&self) -> &Request {
        &self.req
    }
    fn complete(self, _verdict: Verdict) {
        self.hist.record_duration(self.started.elapsed());
    }
}

/// A histogram quantile in milliseconds.
fn quantile_ms(snap: &HistogramSnapshot, p: f64) -> f64 {
    snap.quantile(p) as f64 / 1e6
}

/// One live run: [`PRODUCERS`] threads split the trace into contiguous
/// chunks (the gateway's connection topology) and frame-batch it into the
/// fleet. Returns (elapsed seconds, per-request latencies ns, report).
fn live_run(
    shards: usize,
    cache: &darwin_cache::CacheConfig,
    trace: &Trace,
) -> (f64, HistogramSnapshot, darwin_shard::FleetReport<StaticDriver>) {
    let n = trace.len();
    let fleet: ShardedFleet<StaticDriver, TimedEnvelope> = ShardedFleet::new(
        FleetConfig {
            shards,
            queue_capacity: 8192,
            batch: 512,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: Default::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        },
        cache.clone(),
        Box::new(HashRouter),
        |_| StaticDriver::new(policy()),
    );
    let hist = Arc::new(Histogram::new());
    let ingest = fleet.ingest();
    let chunk_len = n.div_ceil(PRODUCERS);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for chunk in trace.requests().chunks(chunk_len) {
            let mut producer = ingest.producer();
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for frame in chunk.chunks(FRAME) {
                    let started = Instant::now();
                    producer.submit_frame(frame.iter().map(|req| TimedEnvelope {
                        req: *req,
                        started,
                        hist: Arc::clone(&hist),
                    }));
                }
            });
        }
    });
    let report = fleet.finish();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(report.total_processed(), n as u64, "Block ingest is lossless");
    (elapsed, hist.snapshot(), report)
}

/// Runs the sweep and writes the table, CSV and `BENCH_shard.json`.
pub fn run(scale: &Scale, out: &Path) {
    let trace = bench_trace(scale);
    let n = trace.len();
    let cache = scale.cache_config();

    let mut rows: Vec<ShardRow> = Vec::new();
    for &shards in &SHARD_COUNTS {
        // Live threaded fleet behind PRODUCERS frame-batching producers;
        // the fastest of REPEATS runs wins and keeps its latency sample.
        let mut live_s = f64::INFINITY;
        let mut latency = HistogramSnapshot::default();
        let mut report = None;
        for _ in 0..REPEATS {
            let (elapsed, snap, r) = live_run(shards, &cache, &trace);
            if elapsed < live_s {
                live_s = elapsed;
                latency = snap;
            }
            report = Some(r);
        }
        let report = report.expect("at least one repeat");

        // Critical path: time each shard's sequential replay independently,
        // keeping each shard's fastest repeat.
        let mut max_shard_s = 0f64;
        for part in partition(&trace, &HashRouter, shards) {
            let mut best = f64::INFINITY;
            for _ in 0..REPEATS {
                let t0 = Instant::now();
                let r = run_partition(cache.clone(), StaticDriver::new(policy()), &part);
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(r.processed, part.len() as u64);
            }
            max_shard_s = max_shard_s.max(best);
        }

        rows.push(ShardRow {
            shards,
            live_rps: n as f64 / live_s,
            live_speedup: 0.0, // filled below
            live_p99_ms: quantile_ms(&latency, 99.0),
            live_p50_ms: quantile_ms(&latency, 50.0),
            critical_path_rps: n as f64 / max_shard_s,
            critical_path_speedup: 0.0, // filled below
            max_shard_seconds: max_shard_s,
            fleet_ohr: report.fleet_cache().hoc_ohr(),
            max_queue_high_water: report.shards.iter().map(|s| s.queue_high_water).max().unwrap_or(0),
            dropped: report.total_dropped(),
        });
    }
    let base_live = rows[0].live_rps;
    let base_crit = rows[0].critical_path_rps;
    for r in &mut rows {
        r.live_speedup = r.live_rps / base_live;
        r.critical_path_speedup = r.critical_path_rps / base_crit;
    }

    let mut table = Report::new(
        "shard_throughput",
        "Fleet throughput vs shard count",
        &["shards", "live_rps", "live_x", "p99_ms", "critpath_rps", "critpath_x", "ohr", "hiwater"],
        out,
    );
    for r in &rows {
        table.row(&[
            r.shards.to_string(),
            format!("{:.0}", r.live_rps),
            f4(r.live_speedup),
            format!("{:.3}", r.live_p99_ms),
            format!("{:.0}", r.critical_path_rps),
            f4(r.critical_path_speedup),
            f4(r.fleet_ohr),
            r.max_queue_high_water.to_string(),
        ]);
    }
    table.finish().expect("write shard_throughput.csv");

    let last = rows.last().expect("non-empty sweep");
    let bench = ShardBench {
        experiment: "shard_throughput".into(),
        scale: scale.factor(),
        requests: n,
        router: "hash".into(),
        driver: "static f2s100".into(),
        cpu_cores: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        producers: PRODUCERS,
        scaling_1_to_8_critical_path: last.critical_path_speedup,
        scaling_1_to_8_live: last.live_speedup,
        rows,
    };
    std::fs::create_dir_all(out).expect("create output dir");
    let json = serde_json::to_string_pretty(&bench).expect("serialize BENCH_shard");
    let path = out.join("BENCH_shard.json");
    std::fs::write(&path, &json).expect("write BENCH_shard.json");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_roundtrips_and_scales() {
        // A miniature sweep (tiny trace) through the same code path the
        // binary runs, checking the JSON document's shape.
        let dir = std::env::temp_dir().join("darwin-shard-bench-test");
        let scale = Scale::new(1);
        // Not the full run (CI keeps this fast) — just the serializer.
        let row = ShardRow {
            shards: 8,
            live_rps: 1.0,
            live_speedup: 1.0,
            live_p99_ms: 0.5,
            live_p50_ms: 0.1,
            critical_path_rps: 8.0,
            critical_path_speedup: 8.0,
            max_shard_seconds: 0.5,
            fleet_ohr: 0.25,
            max_queue_high_water: 3,
            dropped: 0,
        };
        let doc = ShardBench {
            experiment: "shard_throughput".into(),
            scale: scale.factor(),
            requests: 100,
            router: "hash".into(),
            driver: "static f2s100".into(),
            cpu_cores: 1,
            producers: PRODUCERS,
            scaling_1_to_8_critical_path: 8.0,
            scaling_1_to_8_live: 1.0,
            rows: vec![row],
        };
        let s = serde_json::to_string_pretty(&doc).unwrap();
        assert!(s.contains("\"experiment\""));
        assert!(s.contains("shard_throughput"));
        assert!(s.contains("critical_path_rps"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_shard.json"), s).unwrap();
    }
}
