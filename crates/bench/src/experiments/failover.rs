//! Failover certification: hot-standby promotion vs burial past the
//! restart budget (`BENCH_failover.json`).
//!
//! A two-shard fleet serves a two-class trace while shard 0 is killed
//! twice by a scripted [`FaultPlan`], both times exactly at a checkpoint
//! boundary, under a restart budget of **one**: the first death is a
//! budgeted warm restart, the second is past budget. Two scenarios differ
//! only in [`FleetConfig::replicas`]:
//!
//! * `replicated` — one hot standby per shard: the past-budget death
//!   *promotes* the standby's last applied frame. Nothing is ever answered
//!   `Unavailable`, and the windowed hit-ratio curve dips by at most one
//!   checkpoint window of lost recency (zero here: boundary kills are
//!   lossless), recovering within one window.
//! * `unreplicated` — the same plan buries shard 0: every request routed
//!   to it for the rest of the run is answered `Unavailable`, a fraction
//!   this experiment quantifies.
//!
//! The plotted curves are windowed hit ratios from a *deterministic
//! sequential replay* of shard 0's partition (fleet ≡ sequential replay by
//! the failover-equivalence theorem, `darwin-shard/tests/failover.rs`); the
//! real threaded fleet runs each scenario too and its shard-0 cumulative
//! metrics must match the replay bitwise.
//!
//! Output: a console table, `<out>/failover.csv`, and
//! `<out>/BENCH_failover.json`.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer, ThresholdPolicy};
use darwin_shard::{
    partition, Backpressure, FaultEvent, FaultKind, FaultPlan, FleetConfig, HashRouter, RestartBudget,
    ShardedFleet,
};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use serde::Serialize;
use std::path::Path;

/// Fraction of steady-state hit ratio a post-failover window must reach to
/// count as recovered.
pub const RECOVERY_THRESHOLD: f64 = 0.95;

/// One point of a windowed hit-ratio curve over shard 0's partition.
#[derive(Debug, Clone, Serialize)]
pub struct CurvePoint {
    /// Per-shard request sequence number at the window's end.
    pub seq: u64,
    /// HOC object hit ratio within the window.
    pub ohr: f64,
}

/// One scenario's measurements, fleet counters and replay curve together.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverScenario {
    /// Scenario name (`replicated`, `unreplicated`).
    pub scenario: String,
    /// Hot standbys per shard (1 or 0).
    pub replicas: usize,
    /// Supervisor restarts granted to shard 0.
    pub restarts: u32,
    /// Restarts that resumed warm (includes the promotion).
    pub warm_restarts: u32,
    /// Past-budget deaths answered by standby promotion.
    pub failovers: u32,
    /// Shards dead when the fleet finished.
    pub dead_shards: usize,
    /// Requests fully processed, fleet-wide.
    pub processed: u64,
    /// Requests dropped (the fatal requests the scripted deaths lost).
    pub dropped: u64,
    /// Requests answered `Unavailable` (buried-shard tail).
    pub unavailable: u64,
    /// `unavailable / submitted` — the degradation the standby erases.
    pub unavailable_fraction: f64,
    /// Cumulative shard-0 hit ratio over the whole run.
    pub final_ohr: f64,
    /// Post-failover requests until a window first reached
    /// [`RECOVERY_THRESHOLD`] × steady-state hit ratio; `None` if it never
    /// did (the unreplicated scenario's curve ends at the burial).
    pub recovery_requests: Option<u64>,
    /// Windowed hit-ratio curve of shard 0's deterministic replay.
    pub curve: Vec<CurvePoint>,
}

/// The full `BENCH_failover.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverBench {
    /// Experiment name.
    pub experiment: String,
    /// Scale factor the trace length derives from.
    pub scale: usize,
    /// Requests in the benchmark trace (fleet-wide).
    pub requests: usize,
    /// Shards in the fleet.
    pub shards: usize,
    /// Per-shard sequence of the budgeted first kill (a boundary).
    pub kill1_at: u64,
    /// Per-shard sequence of the past-budget second kill (a boundary).
    pub kill2_at: u64,
    /// Checkpoint cadence — also the replication cadence and the curve
    /// window, so "recovers within one window" is "within one checkpoint".
    pub checkpoint_every: u64,
    /// Steady-state hit ratio of the crash-free shard-0 replay (windowed
    /// over its last quarter).
    pub steady_ohr: f64,
    /// Recovery threshold as a fraction of `steady_ohr`.
    pub recovery_threshold: f64,
    /// Per-scenario measurements.
    pub rows: Vec<FailoverScenario>,
}

fn bench_trace(scale: &Scale) -> Trace {
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 2028)
        .generate(scale.online_trace_len() / 2)
}

fn policy() -> ThresholdPolicy {
    ThresholdPolicy::new(2, 100 * 1024)
}

/// Outcome of one deterministic sequential replay of shard 0's partition.
struct Replay {
    /// Cumulative metrics over every incarnation that processed requests.
    total: CacheMetrics,
    /// Windowed hit-ratio curve.
    curve: Vec<CurvePoint>,
}

/// Sequentially replays shard 0's partition: checkpoint at every `window`
/// boundary, drop the fatal request and restore warm at each kill index,
/// and — when `bury_at` is set — stop processing there (the unreplicated
/// fleet answers the rest `Unavailable`). Boundary kills restore the exact
/// pre-crash state, which is what makes this replay ≡ the promoted fleet.
fn replay(
    cache: &CacheConfig,
    part: &Trace,
    kills: &[u64],
    bury_at: Option<u64>,
    window: u64,
) -> Replay {
    let mut server = CacheServer::new(cache.clone());
    server.set_policy(policy());
    let mut saved: Option<Vec<u8>> = None;
    let mut curve = Vec::new();
    let mut prev = CacheMetrics::default();
    let mut processed = 0u64;
    for (i, req) in part.iter().enumerate() {
        let i = i as u64;
        if bury_at == Some(i) {
            break;
        }
        if kills.contains(&i) {
            let frame = saved.as_ref().expect("kills sit past the first checkpoint boundary");
            server =
                CacheServer::restore_state(cache.clone(), frame).expect("boundary checkpoint restores");
            server.set_policy(policy());
            continue; // the fatal request is answered `Dropped`
        }
        server.process(req);
        processed += 1;
        if (i + 1).is_multiple_of(window) {
            saved = Some(server.save_state());
        }
        if processed.is_multiple_of(window) {
            let cum = server.metrics();
            let req_d = cum.requests - prev.requests;
            let hit_d = cum.hoc_hits - prev.hoc_hits;
            curve.push(CurvePoint {
                seq: i + 1,
                ohr: if req_d == 0 { 0.0 } else { hit_d as f64 / req_d as f64 },
            });
            prev = cum;
        }
    }
    Replay { total: server.metrics(), curve }
}

/// First post-failover window reaching `threshold × steady`, as post-kill
/// request count.
fn recovery_requests(curve: &[CurvePoint], kill_at: u64, steady: f64, threshold: f64) -> Option<u64> {
    curve
        .iter()
        .filter(|p| p.seq > kill_at)
        .find(|p| p.ohr >= threshold * steady)
        .map(|p| p.seq - kill_at)
}

/// Runs both scenarios and writes the table, CSV and `BENCH_failover.json`.
pub fn run(scale: &Scale, out: &Path) {
    let trace = bench_trace(scale);
    let n = trace.len();
    let cache = scale.cache_config();
    let shards = 2usize;
    let parts = partition(&trace, &HashRouter, shards);
    let part0 = parts[0].len() as u64;

    let window = (part0 / 40).max(500);
    // First kill at ~30%, second at ~55% of shard 0's partition, both on
    // checkpoint boundaries, leaving a long post-promotion tail.
    let kill1_at = (part0 * 3 / 10 / window) * window;
    let kill2_at = (part0 * 11 / 20 / window) * window;
    assert!(kill1_at > 0 && kill2_at > kill1_at && kill2_at + window < part0);

    // Crash-free control: steady state = windowed hit ratio over the last
    // quarter of shard 0's clean replay.
    let clean = replay(&cache, &parts[0], &[], None, window);
    let q = clean.curve.len() * 3 / 4;
    let steady_ohr = {
        let tail = &clean.curve[q..];
        tail.iter().map(|p| p.ohr).sum::<f64>() / tail.len() as f64
    };

    let mut rows = Vec::new();
    for (name, replicas) in [("replicated", 1usize), ("unreplicated", 0usize)] {
        let p = policy();
        let mut fleet = ShardedFleet::with_fault_plan(
            FleetConfig {
                shards,
                queue_capacity: 4096,
                batch: 256,
                backpressure: Backpressure::Block,
                snapshot_every: None,
                restart_budget: RestartBudget { max_restarts: 1, window_requests: u64::MAX },
                checkpoint_every: Some(window),
                shed_watermark: None,
                replicas,
            },
            cache.clone(),
            Box::new(HashRouter),
            move |_| StaticDriver::new(p),
            FaultPlan::new(vec![
                FaultEvent { shard: 0, at: kill1_at, kind: FaultKind::Panic },
                FaultEvent { shard: 0, at: kill2_at, kind: FaultKind::Panic },
            ]),
        );
        fleet.submit_trace(&trace);
        let report = fleet.finish();
        let s0 = &report.shards[0];

        let submitted = n as u64;
        assert_eq!(
            report.total_processed() + report.total_dropped() + report.total_unavailable(),
            submitted,
            "{name}: conservation must be exact"
        );

        // The deterministic replay the curve comes from, validated bitwise
        // against the threaded fleet's shard 0.
        let rep = if replicas > 0 {
            replay(&cache, &parts[0], &[kill1_at, kill2_at], None, window)
        } else {
            replay(&cache, &parts[0], &[kill1_at], Some(kill2_at), window)
        };
        assert_eq!(s0.cache, rep.total, "{name}: fleet ≡ sequential replay");

        let recovery = recovery_requests(&rep.curve, kill2_at, steady_ohr, RECOVERY_THRESHOLD);
        rows.push(FailoverScenario {
            scenario: name.into(),
            replicas,
            restarts: s0.restarts,
            warm_restarts: s0.warm_restarts,
            failovers: s0.failovers,
            dead_shards: report.dead_shards(),
            processed: report.total_processed(),
            dropped: report.total_dropped(),
            unavailable: report.total_unavailable(),
            unavailable_fraction: report.total_unavailable() as f64 / submitted as f64,
            final_ohr: rep.total.hoc_ohr(),
            recovery_requests: recovery,
            curve: rep.curve,
        });
    }

    // The acceptance criteria the standby is for: zero Unavailable with a
    // replica, a quantified Unavailable fraction without, and a hit-ratio
    // dip that recovers within one checkpoint window of the promotion.
    let rep = &rows[0];
    assert_eq!(rep.unavailable, 0, "replicated: promotion must erase Unavailable entirely");
    assert_eq!(rep.failovers, 1, "replicated: exactly one promotion");
    assert_eq!(rep.dead_shards, 0);
    let rec = rep.recovery_requests.expect("replicated: the dip must recover");
    assert!(
        rec <= window,
        "replicated: recovery took {rec} requests, more than one checkpoint window ({window})"
    );
    let unrep = &rows[1];
    assert!(unrep.unavailable > 0, "unreplicated: the buried shard's tail must degrade");
    assert_eq!(unrep.dead_shards, 1);
    assert_eq!(unrep.failovers, 0);

    let mut table = Report::new(
        "failover",
        "Hot-standby promotion vs burial past the restart budget",
        &[
            "scenario",
            "replicas",
            "failovers",
            "unavailable",
            "unavail_frac",
            "recovery_reqs",
            "final_ohr",
        ],
        out,
    );
    for r in &rows {
        table.row(&[
            r.scenario.clone(),
            r.replicas.to_string(),
            r.failovers.to_string(),
            r.unavailable.to_string(),
            f4(r.unavailable_fraction),
            r.recovery_requests.map_or_else(|| "never".into(), |v| v.to_string()),
            f4(r.final_ohr),
        ]);
    }
    table.finish().expect("write failover.csv");

    let bench = FailoverBench {
        experiment: "failover".into(),
        scale: scale.factor(),
        requests: n,
        shards,
        kill1_at,
        kill2_at,
        checkpoint_every: window,
        steady_ohr,
        recovery_threshold: RECOVERY_THRESHOLD,
        rows,
    };
    std::fs::create_dir_all(out).expect("create output dir");
    let json = serde_json::to_string_pretty(&bench).expect("serialize BENCH_failover");
    let path = out.join("BENCH_failover.json");
    std::fs::write(&path, &json).expect("write BENCH_failover.json");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace(n: usize) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), 9).generate(n)
    }

    #[test]
    fn boundary_kills_replay_losslessly() {
        // Two boundary kills with checkpointing equal the uninterrupted
        // replay of the trace minus the two dropped requests.
        let trace = tiny_trace(4_000);
        let mut reqs = trace.requests().to_vec();
        reqs.remove(2_000);
        reqs.remove(1_000);
        let uninterrupted =
            replay(&CacheConfig::small_test(), &Trace::from_sorted(reqs), &[], None, 500);
        let killed = replay(&CacheConfig::small_test(), &trace, &[1_000, 2_000], None, 500);
        assert_eq!(killed.total, uninterrupted.total);
    }

    #[test]
    fn burial_truncates_the_replay() {
        let trace = tiny_trace(4_000);
        let buried = replay(&CacheConfig::small_test(), &trace, &[1_000], Some(2_000), 500);
        // Processed everything before the burial except the one fatal.
        assert_eq!(buried.total.requests, 1_999);
        assert!(buried.curve.len() < 4_000 / 500);
    }

    #[test]
    fn recovery_point_is_first_window_at_threshold() {
        let curve = vec![
            CurvePoint { seq: 500, ohr: 0.4 },
            CurvePoint { seq: 1_000, ohr: 0.1 },
            CurvePoint { seq: 1_500, ohr: 0.39 },
        ];
        assert_eq!(recovery_requests(&curve, 500, 0.4, 0.95), Some(1_000));
        assert_eq!(recovery_requests(&curve, 500, 0.9, 0.95), None);
    }

    #[test]
    fn bench_json_has_expected_shape() {
        let doc = FailoverBench {
            experiment: "failover".into(),
            scale: 1,
            requests: 100_000,
            shards: 2,
            kill1_at: 15_000,
            kill2_at: 27_500,
            checkpoint_every: 1_250,
            steady_ohr: 0.5,
            recovery_threshold: RECOVERY_THRESHOLD,
            rows: vec![FailoverScenario {
                scenario: "replicated".into(),
                replicas: 1,
                restarts: 2,
                warm_restarts: 2,
                failovers: 1,
                dead_shards: 0,
                processed: 99_998,
                dropped: 2,
                unavailable: 0,
                unavailable_fraction: 0.0,
                final_ohr: 0.49,
                recovery_requests: Some(1_250),
                curve: vec![CurvePoint { seq: 1_250, ohr: 0.1 }],
            }],
        };
        let s = serde_json::to_string_pretty(&doc).unwrap();
        assert!(s.contains("\"experiment\""));
        assert!(s.contains("unavailable_fraction"));
        assert!(s.contains("recovery_requests"));
        assert!(s.contains("\"failovers\""));
    }
}
