//! Elastic fleet rebalancing: the 4 → 8 → 4 resize scenario
//! (`BENCH_rebalance.json`).
//!
//! Part 1 drives a live [`ElasticFleet`] (threaded shard workers, blocking
//! backpressure) through the acceptance schedule: serve on 4 shards, grow
//! to 8 under load, serve, shrink back to 4, serve out the tail. After
//! every window of requests the harness drains the queues and samples the
//! merged fleet metrics, giving an exact windowed hit-ratio curve in
//! request space. The experiment asserts the determinism contract's
//! observable half:
//!
//! * **conservation** — `processed + dropped + unavailable == submitted`,
//!   with zero `Unavailable` and zero drops across both cutovers;
//! * **remap bound** — the fraction of the trace's distinct objects whose
//!   owner changes is within 10% of the theoretical `|M−N|/max(N,M)`;
//! * **bounded dip** — the windowed hit ratio returns to ≥95% of the
//!   pre-resize steady state within one checkpoint window (defined
//!   fleet-wide: `checkpoint_every × max(N,M)` requests — the span in
//!   which every shard of the wider fleet cuts one periodic checkpoint);
//! * **O(churn) handoff** — every survivor ships a delta envelope smaller
//!   than its full checkpoint frame.
//!
//! Part 2 is the cross-process warm boot: a loopback [`Gateway`] with
//! `--checkpoint-dir` semantics serves half the trace and shuts down; a
//! second gateway process pointed at the same directory must boot every
//! shard warm (`warm_boots == shards`) and serve the rest.
//!
//! Output: a console table, `<out>/rebalance.csv`, and
//! `<out>/BENCH_rebalance.json`.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin_cache::ThresholdPolicy;
use darwin_gateway::{loadgen, Gateway, GatewayConfig, LoadgenConfig};
use darwin_rebalance::{
    theoretical_remap, ElasticFleet, RingRouter, TransferStat, DEFAULT_SEED, DEFAULT_VNODES,
};
use darwin_shard::{Backpressure, FleetConfig, GenerationSummary, Router};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Request, Trace, TraceGenerator, TrafficClass};
use serde::Serialize;
use std::collections::HashSet;
use std::path::Path;

/// Fraction of steady-state hit ratio a post-resize window must regain.
pub const RECOVERY_THRESHOLD: f64 = 0.95;
/// Allowed relative error between measured and theoretical remap fraction.
pub const REMAP_TOLERANCE: f64 = 0.10;

/// One point of the windowed hit-ratio curve.
#[derive(Debug, Clone, Serialize)]
pub struct CurvePoint {
    /// Fleet-wide request sequence number at the window's end.
    pub seq: u64,
    /// HOC object hit ratio within the window.
    pub ohr: f64,
}

/// One resize's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ResizeRow {
    /// Shards before the resize.
    pub from_shards: usize,
    /// Shards after the resize.
    pub to_shards: usize,
    /// Fleet-wide request sequence number of the cutover.
    pub at_seq: u64,
    /// Fraction of the trace's distinct objects whose owner changed.
    pub measured_remap: f64,
    /// The `|M−N|/max(N,M)` bound.
    pub theoretical_remap: f64,
    /// Pre-resize steady-state windowed hit ratio (last quarter of the
    /// preceding phase).
    pub steady_ohr: f64,
    /// Lowest windowed hit ratio inside the recovery budget (the dip).
    pub dip_ohr: f64,
    /// Post-resize requests until a window first regained
    /// [`RECOVERY_THRESHOLD`] × `steady_ohr`.
    pub recovery_requests: u64,
    /// The recovery budget: one fleet-wide checkpoint window,
    /// `checkpoint_every × max(N,M)` requests.
    pub recovery_budget: u64,
    /// Transfer envelopes the resize shipped, one per survivor.
    pub transfers: Vec<TransferStat>,
}

/// The cross-process warm-boot measurements (part 2).
#[derive(Debug, Clone, Serialize)]
pub struct WarmBootRow {
    /// Shards behind each gateway process.
    pub shards: usize,
    /// Requests the first process served before shutdown.
    pub first_requests: u64,
    /// Requests the restarted process served.
    pub second_requests: u64,
    /// Shards the restarted process restored from spill files
    /// (the `warm_restarts > 0` acceptance criterion; boot-time restores
    /// are counted in the dedicated warm-boot counter so that
    /// `warm + cold == restarts` stays an invariant for in-process
    /// respawns).
    pub warm_boots: u32,
    /// Supervisor restarts in the second process (0: a warm boot is not a
    /// restart).
    pub restarts: u32,
}

/// The full `BENCH_rebalance.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct RebalanceBench {
    /// Experiment name.
    pub experiment: String,
    /// Scale factor the trace length derives from.
    pub scale: usize,
    /// Requests in the elastic-run trace.
    pub requests: usize,
    /// CPU cores visible to this process.
    pub cpu_cores: usize,
    /// Router label (ring seed + vnodes).
    pub router: String,
    /// Virtual nodes per shard.
    pub vnodes: u32,
    /// Shard counts the run moves through.
    pub shards_schedule: Vec<usize>,
    /// Per-shard checkpoint cadence, requests.
    pub checkpoint_every: u64,
    /// Window length of the hit-ratio curve, fleet-wide requests.
    pub window: u64,
    /// Requests submitted across the whole elastic run.
    pub submitted: u64,
    /// Requests processed (== submitted: nothing dropped or unavailable).
    pub processed: u64,
    /// Requests dropped (0).
    pub dropped: u64,
    /// Requests answered `Unavailable` (0).
    pub unavailable: u64,
    /// The exactly-once ledger held.
    pub conserved: bool,
    /// Per-generation ledger rows.
    pub generations: Vec<GenerationSummary>,
    /// Windowed hit-ratio curve over the whole run.
    pub curve: Vec<CurvePoint>,
    /// Per-resize measurements.
    pub resizes: Vec<ResizeRow>,
    /// Cross-process warm boot (part 2).
    pub warm_boot: WarmBootRow,
}

fn bench_trace(scale: &Scale) -> Trace {
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 2028)
        .generate(scale.online_trace_len())
}

fn policy() -> ThresholdPolicy {
    ThresholdPolicy::new(2, 100 * 1024)
}

fn fleet_cfg(shards: usize, checkpoint_every: u64) -> FleetConfig {
    FleetConfig {
        shards,
        queue_capacity: 4096,
        batch: 256,
        backpressure: Backpressure::Block,
        snapshot_every: None,
        restart_budget: Default::default(),
        checkpoint_every: Some(checkpoint_every),
        shed_watermark: None,
        replicas: 0,
    }
}

/// Fraction of `trace`'s *distinct* objects whose ring owner changes in a
/// `from → to` resize — the measured counterpart of [`theoretical_remap`],
/// weighted the way the fleet actually feels it (per object, not per id
/// drawn from a synthetic range).
fn measured_remap(ring: &RingRouter, trace: &Trace, from: usize, to: usize) -> f64 {
    let ids: HashSet<u64> = trace.iter().map(|r| r.id).collect();
    if ids.is_empty() {
        return 0.0;
    }
    let moved = ids.iter().filter(|&&id| ring.route(id, from) != ring.route(id, to)).count();
    moved as f64 / ids.len() as f64
}

/// Mean windowed hit ratio over the last quarter of the curve segment
/// `[lo, hi)` — the steady state the next resize is measured against.
fn steady_ohr(curve: &[CurvePoint], lo: usize, hi: usize) -> f64 {
    let seg = &curve[lo..hi];
    let tail = &seg[seg.len() * 3 / 4..];
    tail.iter().map(|p| p.ohr).sum::<f64>() / tail.len() as f64
}

/// Runs the elastic scenario and part 2 with the default 4 → 8 → 4
/// schedule, writes table, CSV and JSON.
pub fn run(scale: &Scale, out: &Path) {
    run_with(scale, out, 8);
}

/// Like [`run`], but scaling the fleet to `resize_to` shards mid-run
/// (the `--resize-to` flag): the schedule becomes `4 → resize_to → 4`.
pub fn run_with(scale: &Scale, out: &Path, resize_to: usize) {
    assert!(resize_to >= 1, "--resize-to needs at least one shard");
    let trace = bench_trace(scale);
    let n = trace.len();
    let cache = scale.cache_config();
    let window = (n as u64 / 50).max(500);
    let checkpoint_every = window;
    let schedule = [4usize, resize_to, 4];

    // --- Part 1: the live 4 -> 8 -> 4 elastic run -----------------------
    let ckpt_dir = out.join("rebalance-ckpt");
    std::fs::remove_dir_all(&ckpt_dir).ok();
    let ring = RingRouter::new(DEFAULT_SEED, DEFAULT_VNODES);
    let p = policy();
    let fleet = ElasticFleet::new(
        fleet_cfg(schedule[0], checkpoint_every),
        cache.clone(),
        ring.clone(),
        move |_| StaticDriver::new(p),
        Some(ckpt_dir.clone()),
        false,
    );

    let frames: Vec<Vec<Request>> =
        trace.requests().chunks(window as usize).map(|c| c.to_vec()).collect();
    // Resize at 40% and 80% of the trace — window-aligned so the curve's
    // resize boundaries are exact.
    let r1 = frames.len() * 2 / 5;
    let r2 = frames.len() * 4 / 5;

    let mut curve: Vec<CurvePoint> = Vec::with_capacity(frames.len());
    let mut resizes: Vec<ResizeRow> = Vec::new();
    let mut prev = (0u64, 0u64); // cumulative (requests, hoc_hits)
    let mut boundaries: Vec<(usize, usize, usize, u64)> = Vec::new(); // (curve idx, from, to, seq)

    for (i, frame) in frames.iter().enumerate() {
        if i == r1 || i == r2 {
            let (from, to) =
                if i == r1 { (schedule[0], schedule[1]) } else { (schedule[1], schedule[2]) };
            let at_seq = fleet.submitted();
            fleet.resize(to).expect("live resize");
            boundaries.push((curve.len(), from, to, at_seq));
        }
        fleet.submit_frame(frame.iter().cloned());
        // Drain to the submission point so the curve is exact in request
        // space (the equivalence theorem makes the drained state a property
        // of the trace, not of thread timing).
        let submitted = fleet.submitted();
        loop {
            let m = fleet.metrics();
            if m.total_processed() + m.total_dropped() + m.total_unavailable() >= submitted {
                let c = m.fleet_cache();
                let (dr, dh) = (c.requests - prev.0, c.hoc_hits - prev.1);
                curve.push(CurvePoint {
                    seq: submitted,
                    ohr: if dr == 0 { 0.0 } else { dh as f64 / dr as f64 },
                });
                prev = (c.requests, c.hoc_hits);
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    let report = fleet.finish(false);

    // Conservation: the exactly-once ledger, with zero Unavailable.
    assert!(report.conserved(), "processed + dropped + unavailable == submitted");
    assert_eq!(report.metrics.total_unavailable(), 0, "a resize never answers Unavailable");
    assert_eq!(report.metrics.total_dropped(), 0, "blocking backpressure drops nothing");
    assert_eq!(report.submitted, n as u64);

    // Per-resize rows: remap bound, dip, recovery.
    let mut seg_lo = 0usize;
    for &(cut_idx, from, to, at_seq) in &boundaries {
        let steady = steady_ohr(&curve, seg_lo, cut_idx);
        let budget = checkpoint_every * from.max(to) as u64;
        let in_budget: Vec<&CurvePoint> =
            curve[cut_idx..].iter().take_while(|p| p.seq - at_seq <= budget).collect();
        let dip = in_budget.iter().map(|p| p.ohr).fold(f64::INFINITY, f64::min);
        let recovery = in_budget
            .iter()
            .find(|p| p.ohr >= RECOVERY_THRESHOLD * steady)
            .map(|p| p.seq - at_seq)
            .unwrap_or_else(|| {
                panic!(
                    "{from}->{to}: hit ratio never regained {:.0}% of steady ({steady:.4}) \
                     within one checkpoint window ({budget} requests)",
                    RECOVERY_THRESHOLD * 100.0
                )
            });
        let measured = measured_remap(&ring, &trace, from, to);
        let theory = theoretical_remap(from, to);
        assert!(
            (measured - theory).abs() <= REMAP_TOLERANCE * theory,
            "{from}->{to}: measured remap {measured:.4} strays >10% from theory {theory:.4}"
        );
        let transfers: Vec<TransferStat> = report
            .transfers
            .iter()
            .filter(|t| t.from_generation == resizes.len() as u32)
            .cloned()
            .collect();
        assert_eq!(transfers.len(), from.min(to), "one envelope per survivor");
        for t in &transfers {
            assert!(t.delta, "shard {}: handoff ships a delta, not the full image", t.shard);
            assert!(t.shipped_bytes < t.full_bytes, "shard {}: O(churn) handoff", t.shard);
        }
        resizes.push(ResizeRow {
            from_shards: from,
            to_shards: to,
            at_seq,
            measured_remap: measured,
            theoretical_remap: theory,
            steady_ohr: steady,
            dip_ohr: dip,
            recovery_requests: recovery,
            recovery_budget: budget,
            transfers,
        });
        seg_lo = cut_idx;
    }
    std::fs::remove_dir_all(&ckpt_dir).ok();

    // --- Part 2: killed-and-restarted gateway warm-boots ----------------
    let gw_dir = out.join("rebalance-gw-ckpt");
    std::fs::remove_dir_all(&gw_dir).ok();
    let shards = schedule[0];
    let half = n / 2;
    let (head, tail) = {
        let reqs = trace.requests();
        (Trace::from_sorted(reqs[..half].to_vec()), Trace::from_sorted(reqs[half..].to_vec()))
    };
    let serve = |t: &Trace| {
        let p = policy();
        let gateway = Gateway::bind_with(
            "127.0.0.1:0",
            fleet_cfg(shards, checkpoint_every),
            cache.clone(),
            Box::new(RingRouter::new(DEFAULT_SEED, DEFAULT_VNODES)),
            GatewayConfig { checkpoint_dir: Some(gw_dir.clone()), ..GatewayConfig::default() },
            move |_| StaticDriver::new(p),
        )
        .expect("bind loopback gateway");
        let lg = LoadgenConfig { connections: 2, batch: 64, window: 8, ..LoadgenConfig::default() };
        let lg_report = loadgen::run(gateway.local_addr(), t, lg).expect("loadgen replay");
        assert_eq!(lg_report.tally.total(), t.len() as u64, "every request gets a verdict");
        let metrics = gateway.metrics();
        gateway.shutdown();
        let fleet_report = gateway.finish().expect("clean gateway shutdown");
        (metrics, fleet_report)
    };
    let (_, first_report) = serve(&head);
    // "Kill": the first process is gone; only the spill directory survives.
    let (second_metrics, second_report) = serve(&tail);
    let warm_boots = second_metrics.total_warm_boots();
    assert_eq!(
        warm_boots, shards as u32,
        "the restarted gateway restores every shard from --checkpoint-dir"
    );
    assert_eq!(second_report.total_restarts(), 0, "a warm boot is not a restart");
    let warm_boot = WarmBootRow {
        shards,
        first_requests: first_report.total_processed(),
        second_requests: second_report.total_processed(),
        warm_boots,
        restarts: second_report.total_restarts(),
    };
    std::fs::remove_dir_all(&gw_dir).ok();

    // --- Report ---------------------------------------------------------
    let description = format!(
        "Elastic {}->{}->{} resize: remap bound, hit-ratio dip and recovery",
        schedule[0], schedule[1], schedule[2]
    );
    let mut table = Report::new(
        "rebalance",
        &description,
        &["resize", "remap", "theory", "steady", "dip", "recovery_reqs", "budget", "delta_bytes"],
        out,
    );
    for r in &resizes {
        table.row(&[
            format!("{}->{}", r.from_shards, r.to_shards),
            f4(r.measured_remap),
            f4(r.theoretical_remap),
            f4(r.steady_ohr),
            f4(r.dip_ohr),
            r.recovery_requests.to_string(),
            r.recovery_budget.to_string(),
            r.transfers.iter().map(|t| t.shipped_bytes).sum::<u64>().to_string(),
        ]);
    }
    table.finish().expect("write rebalance.csv");
    println!(
        "conservation: submitted {} processed {} dropped {} unavailable {} | gateway warm boots {}/{}",
        report.submitted,
        report.metrics.total_processed(),
        report.metrics.total_dropped(),
        report.metrics.total_unavailable(),
        warm_boot.warm_boots,
        warm_boot.shards,
    );

    let bench = RebalanceBench {
        experiment: "rebalance".into(),
        scale: scale.factor(),
        requests: n,
        cpu_cores: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        router: ring.label(),
        vnodes: DEFAULT_VNODES as u32,
        shards_schedule: schedule.to_vec(),
        checkpoint_every,
        window,
        submitted: report.submitted,
        processed: report.metrics.total_processed(),
        dropped: report.metrics.total_dropped(),
        unavailable: report.metrics.total_unavailable(),
        conserved: report.conserved(),
        generations: report.metrics.generations.clone(),
        curve,
        resizes,
        warm_boot,
    };
    std::fs::create_dir_all(out).expect("create output dir");
    let json = serde_json::to_string_pretty(&bench).expect("serialize BENCH_rebalance");
    let path = out.join("BENCH_rebalance.json");
    std::fs::write(&path, &json).expect("write BENCH_rebalance.json");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_ohr_uses_the_last_quarter() {
        let curve: Vec<CurvePoint> =
            (0..8).map(|i| CurvePoint { seq: i * 100, ohr: i as f64 / 10.0 }).collect();
        // Last quarter of [0, 8) is indices 6..8 -> mean of 0.6 and 0.7.
        assert!((steady_ohr(&curve, 0, 8) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn measured_remap_counts_distinct_objects() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 5).generate(5_000);
        let ring = RingRouter::new(DEFAULT_SEED, DEFAULT_VNODES);
        let m = measured_remap(&ring, &trace, 4, 8);
        let t = theoretical_remap(4, 8);
        assert!(m > 0.0 && m < 1.0);
        assert!((m - t).abs() <= 0.2 * t, "measured {m} vs theory {t}");
        assert_eq!(measured_remap(&ring, &trace, 4, 4), 0.0);
    }

    #[test]
    fn bench_json_has_expected_shape() {
        let doc = RebalanceBench {
            experiment: "rebalance".into(),
            scale: 1,
            requests: 1_000,
            cpu_cores: 8,
            router: "ring".into(),
            vnodes: 64,
            shards_schedule: vec![4, 8, 4],
            checkpoint_every: 500,
            window: 500,
            submitted: 1_000,
            processed: 1_000,
            dropped: 0,
            unavailable: 0,
            conserved: true,
            generations: Vec::new(),
            curve: vec![CurvePoint { seq: 500, ohr: 0.4 }],
            resizes: Vec::new(),
            warm_boot: WarmBootRow {
                shards: 4,
                first_requests: 500,
                second_requests: 500,
                warm_boots: 4,
                restarts: 0,
            },
        };
        let s = serde_json::to_string_pretty(&doc).unwrap();
        assert!(s.contains("cpu_cores"));
        assert!(s.contains("conserved"));
        assert!(s.contains("warm_boots"));
        assert!(s.contains("shards_schedule"));
    }
}
