//! Flash-crowd overload benchmark: fair shedding and network-fault
//! determinism over real sockets (`BENCH_overload.json`).
//!
//! Two scenario families share the output document:
//!
//! * **shed/fairness** — at 1, 2 and 8 shards, a flash-crowd trace
//!   ([`compress_window`] + [`flash_crowd`] + [`popularity_inversion`]) is
//!   replayed by a four-connection fair cohort while a **greedy client**
//!   floods the same gateway from a fifth connection as fast as it can.
//!   The gateway runs with both overload valves open: a per-connection
//!   token bucket (`conn_rate`) and a per-shard queue watermark
//!   (`shed_watermark`), with scripted worker stalls forcing the watermark
//!   to actually engage. Each run certifies, over the wire:
//!   - the extended conservation law — every record submitted to the fleet
//!     is `processed + dropped + unavailable + shed`, exactly;
//!   - exactly-once answering for the fair cohort (retried `Busy` records
//!     converge to one final verdict each) with **zero** starved
//!     connections and zero transport failures;
//!   - the greedy client's admitted throughput stays within 2× its token
//!     fair share — overload makes the gateway selective, not generous;
//!   - a bounded reply p99 for the surviving (fair) traffic.
//! * **net-fault determinism** — the same scripted hostile network
//!   ([`NetFaultPlan`]: accept pause, stall, reset, corruption) is run
//!   twice against identical gateways with a seeded loadgen; the fetched
//!   event journals must re-encode to **byte-identical** frames, proving
//!   the fault injector keys off frame sequence numbers, not wall clock.
//!
//! Output: a console table, `<out>/overload.csv` and
//! `<out>/BENCH_overload.json`.

use crate::report::{f4, Report};
use crate::scale::Scale;
use darwin_cache::{CacheMetrics, ThresholdPolicy};
use darwin_gateway::netfault::{NetFaultEvent, NetFaultKind, NetFaultPlan};
use darwin_gateway::wire::{encode_get, FrameReader, Message};
use darwin_gateway::{loadgen, Gateway, GatewayConfig, LoadgenConfig, VerdictOutcome};
use darwin_obs::encode_fleet_events;
use darwin_shard::{Backpressure, FaultEvent, FaultKind, FaultPlan, FleetConfig, HashRouter};
use darwin_testbed::{AdmissionDriver, StaticDriver};
use darwin_trace::{
    compress_window, flash_crowd, popularity_inversion, MixSpec, Request, Trace, TraceGenerator,
    TrafficClass,
};
use serde::Serialize;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Per-connection token-bucket rate (records/second) in the shed scenarios.
const CONN_RATE: u64 = 4_000;
/// Per-shard queue watermark in the shed scenarios.
const SHED_WATERMARK: usize = 32;
/// Fair cohort size (loadgen connections).
const FAIR_CONNS: usize = 4;
/// Minimum greedy-client runtime, so its admitted-rate measurement
/// amortizes the bucket's one-second burst allowance.
const GREEDY_MIN_RUN: Duration = Duration::from_millis(1_500);

/// One shed/fairness row of `BENCH_overload.json`.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadRow {
    /// Fleet shard count.
    pub shards: usize,
    /// Fair-cohort requests (= trace length).
    pub requests: u64,
    /// Final verdicts the fair cohort tallied (must equal `requests`).
    pub answered: u64,
    /// Fair-cohort records answered `Busy` and later resent to completion.
    pub fair_shed: u64,
    /// Fleet-side ledger: processed.
    pub processed: u64,
    /// Fleet-side ledger: dropped.
    pub dropped: u64,
    /// Fleet-side ledger: unavailable.
    pub unavailable: u64,
    /// Fleet-side ledger: shed at the queue watermark.
    pub fleet_shed: u64,
    /// Records the gateway shed before the fleet (token bucket / backlog).
    pub gateway_shed: u64,
    /// Records submitted to the fleet (`requests_in`).
    pub submitted: u64,
    /// Records the greedy client got admitted (final verdicts).
    pub greedy_admitted: u64,
    /// Records the greedy client was answered `Busy`.
    pub greedy_busy: u64,
    /// Greedy admitted records/second over its run.
    pub greedy_rate: f64,
    /// The configured per-connection fair share (records/second).
    pub conn_rate: u64,
    /// Fair connections that failed to complete their chunk (must be 0).
    pub starved_conns: usize,
    /// p99 frame round-trip of the surviving (fair) traffic, milliseconds.
    pub p99_ms: f64,
    /// Fair-cohort end-to-end requests/second.
    pub rps: f64,
}

/// The determinism certificate for the net-fault scenario.
#[derive(Debug, Clone, Serialize)]
pub struct DeterminismRow {
    /// Scripted network faults in the plan.
    pub scripted_faults: usize,
    /// Network faults the gateway counted (must equal `scripted_faults`,
    /// same in both runs).
    pub fired_faults: u64,
    /// Bytes of the re-encoded journal frame.
    pub journal_bytes: usize,
    /// Whether the two seeded reruns produced byte-identical journals.
    pub identical: bool,
}

/// The full `BENCH_overload.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadBench {
    /// Experiment name.
    pub experiment: String,
    /// Scale factor the trace length derives from.
    pub scale: usize,
    /// Per-shard-count shed/fairness measurements.
    pub rows: Vec<OverloadRow>,
    /// The two-run net-fault determinism certificate.
    pub determinism: DeterminismRow,
}

/// A driver with a small deterministic per-request spin, so the flash crowd
/// actually outruns the drain and the shed watermark has work to do.
struct SpinDriver {
    policy: ThresholdPolicy,
    spins: u32,
}

impl AdmissionDriver for SpinDriver {
    fn initial_policy(&mut self) -> ThresholdPolicy {
        self.policy
    }
    fn observe(&mut self, _req: &Request, _m: &CacheMetrics) -> Option<ThresholdPolicy> {
        for _ in 0..self.spins {
            std::hint::spin_loop();
        }
        None
    }
    fn label(&self) -> String {
        "spin".into()
    }
}

fn policy() -> ThresholdPolicy {
    ThresholdPolicy::new(2, 100 * 1024)
}

/// The flash-crowd trace: a two-class base, its popular set inverted
/// mid-stream, a hot object absorbing half the burst window, and the
/// window's arrivals compressed 4× — §2.1's "rapid change" taken literally.
fn burst_trace(scale: &Scale) -> Trace {
    let base = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        4_217,
    )
    .generate(scale.online_trace_len() / 8);
    let inverted = popularity_inversion(&base, 0.5, 99);
    let hot = flash_crowd(&inverted, 0.4, 0.8, 0.5, 4 * 1024 * 1024, 7);
    compress_window(&hot, 0.4, 0.8, 4.0)
}

/// Floods the gateway from one connection as fast as the socket allows,
/// reading every reply (a greedy-but-polite client: it overruns its rate
/// share, not the slow-client budget). Returns
/// `(admitted, busy, elapsed_secs)`.
fn greedy_client(addr: std::net::SocketAddr, stop: &AtomicBool) -> (u64, u64, f64) {
    let stream = TcpStream::connect(addr).expect("greedy connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone greedy stream");
    let mut reader = FrameReader::new(stream);
    // A distinct hot-ish object set, far from the generator's id space.
    let frame: Vec<Request> = (0..256u64).map(|i| Request::new((1 << 60) | i, 64 * 1024, i)).collect();
    let mut buf = Vec::new();
    encode_get(&frame, &mut buf);
    let started = Instant::now();
    let (mut admitted, mut busy) = (0u64, 0u64);
    loop {
        if writer.write_all(&buf).is_err() {
            break;
        }
        match reader.recv() {
            Ok(Some(Message::Verdicts(vs))) => {
                for v in &vs {
                    if v.outcome == VerdictOutcome::Busy {
                        busy += 1;
                    } else {
                        admitted += 1;
                    }
                }
            }
            _ => break,
        }
        if stop.load(Ordering::Relaxed) && started.elapsed() >= GREEDY_MIN_RUN {
            break;
        }
    }
    (admitted, busy, started.elapsed().as_secs_f64())
}

/// One shed/fairness run at the given shard count.
fn run_shed(trace: &Trace, scale: &Scale, shards: usize) -> OverloadRow {
    let n = trace.len() as u64;
    // Stall every worker early (the shard overload suite's recipe) so the
    // queue watermark provably engages during the burst.
    let stalls = FaultPlan::new(
        (0..shards)
            .flat_map(|s| {
                (0..8).map(move |at| FaultEvent {
                    shard: s,
                    at,
                    kind: FaultKind::Delay { spins: 500_000 },
                })
            })
            .collect(),
    );
    let gateway = Gateway::bind_with(
        "127.0.0.1:0",
        FleetConfig {
            shards,
            queue_capacity: 4 * SHED_WATERMARK,
            batch: 32,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: Default::default(),
            checkpoint_every: None,
            shed_watermark: Some(SHED_WATERMARK),
            replicas: 0,
        },
        scale.cache_config(),
        Box::new(HashRouter),
        GatewayConfig { fault_plan: stalls, conn_rate: Some(CONN_RATE), ..GatewayConfig::default() },
        |_| SpinDriver { policy: policy(), spins: 400 },
    )
    .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    let stop = AtomicBool::new(false);
    let (report, greedy) = std::thread::scope(|scope| {
        let greedy = scope.spawn(|| greedy_client(addr, &stop));
        let report = loadgen::run(
            addr,
            trace,
            LoadgenConfig { connections: FAIR_CONNS, batch: 64, window: 8, ..Default::default() },
        )
        .expect("fair cohort replay");
        stop.store(true, Ordering::Relaxed);
        (report, greedy.join().expect("greedy client"))
    });
    let (greedy_admitted, greedy_busy, greedy_elapsed) = greedy;

    let metrics = gateway.metrics();
    gateway.shutdown();
    let fleet = gateway.finish().expect("clean gateway shutdown");
    let gw = metrics.gateway.expect("gateway counters");

    // The contracts this benchmark exists to certify.
    assert_eq!(report.tally.total(), n, "{shards} shards: fair cohort answered exactly once");
    assert_eq!(report.errors.total_failures(), 0, "{shards} shards: Busy is flow control, not failure");
    let starved_conns = report.per_connection.iter().filter(|c| c.tally.total() != c.requests).count();
    assert_eq!(starved_conns, 0, "{shards} shards: no fair connection starves");
    assert_eq!(
        fleet.total_processed() + fleet.total_dropped() + fleet.total_unavailable() + fleet.total_shed(),
        gw.requests_in,
        "{shards} shards: extended ledger processed + dropped + unavailable + shed == submitted"
    );
    assert!(fleet.total_shed() > 0, "{shards} shards: the queue watermark must engage");
    assert!(gw.shed > 0, "{shards} shards: the token bucket must throttle the greedy flood");
    // Fairness: the greedy client's admitted rate is capped near its token
    // share (rate × elapsed plus the one-second burst, measured over a run
    // long enough that 2× covers the burst term).
    let greedy_rate = greedy_admitted as f64 / greedy_elapsed.max(1e-9);
    assert!(
        greedy_rate <= 2.0 * CONN_RATE as f64,
        "{shards} shards: greedy admitted {greedy_rate:.0} rec/s exceeds 2x fair share ({CONN_RATE})"
    );
    assert!(greedy_busy > 0, "{shards} shards: the greedy flood must see Busy verdicts");
    let p99_ms = report.latency.quantile(99.0) as f64 / 1e6;
    assert!(p99_ms < 2_000.0, "{shards} shards: surviving-traffic p99 {p99_ms:.1}ms is unbounded");

    OverloadRow {
        shards,
        requests: n,
        answered: report.tally.total(),
        fair_shed: report.errors.shed,
        processed: fleet.total_processed(),
        dropped: fleet.total_dropped(),
        unavailable: fleet.total_unavailable(),
        fleet_shed: fleet.total_shed(),
        gateway_shed: gw.shed,
        submitted: gw.requests_in,
        greedy_admitted,
        greedy_busy,
        greedy_rate,
        conn_rate: CONN_RATE,
        starved_conns,
        p99_ms,
        rps: report.rps(),
    }
}

/// The fixed hostile-network script for the determinism runs: every fault
/// kind, keyed to early frames so both runs provably reach them.
fn netfault_plan() -> NetFaultPlan {
    NetFaultPlan::new(vec![
        NetFaultEvent { conn: 0, at_frame: 0, kind: NetFaultKind::AcceptPause { spins: 40_000 } },
        NetFaultEvent { conn: 0, at_frame: 1, kind: NetFaultKind::Stall { spins: 80_000 } },
        NetFaultEvent { conn: 0, at_frame: 3, kind: NetFaultKind::Reset },
        NetFaultEvent { conn: 1, at_frame: 2, kind: NetFaultKind::Corrupt },
    ])
}

/// One seeded hostile-network run; returns the re-encoded journal frame and
/// the gateway's fault counter.
fn run_netfault_once(scale: &Scale) -> (Vec<u8>, u64) {
    let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1_337)
        .generate((scale.online_trace_len() / 50).max(4_000));
    let gateway = Gateway::bind_with(
        "127.0.0.1:0",
        FleetConfig {
            shards: 2,
            queue_capacity: 256,
            batch: 64,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: Default::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        },
        scale.cache_config(),
        Box::new(HashRouter),
        GatewayConfig { net_fault_plan: netfault_plan(), ..GatewayConfig::default() },
        |_| StaticDriver::new(policy()),
    )
    .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    let report = loadgen::run(
        addr,
        &trace,
        LoadgenConfig { connections: 1, batch: 64, window: 4, seed: 0xFA57, ..Default::default() },
    )
    .expect("replay must survive the hostile network");
    assert_eq!(report.tally.total(), trace.len() as u64, "exactly-once under faults");
    let journals = loadgen::fetch_events(addr).expect("events fetch");
    let frame = encode_fleet_events(&journals);

    let metrics = gateway.metrics();
    gateway.shutdown();
    gateway.finish().expect("clean gateway shutdown");
    (frame, metrics.gateway.expect("gateway counters").net_faults)
}

/// Runs both scenario families and writes the table, CSV and
/// `BENCH_overload.json`.
pub fn run(scale: &Scale, out: &Path) {
    let trace = burst_trace(scale);
    let rows: Vec<OverloadRow> =
        [1usize, 2, 8].iter().map(|&shards| run_shed(&trace, scale, shards)).collect();

    let plan_len = netfault_plan().events().len();
    let (journal_a, fired_a) = run_netfault_once(scale);
    let (journal_b, fired_b) = run_netfault_once(scale);
    assert_eq!(fired_a, plan_len as u64, "every scripted network fault fires");
    assert_eq!(fired_b, fired_a, "reruns fire identically");
    assert_eq!(journal_a, journal_b, "seeded reruns must re-encode byte-identical journals");
    let determinism = DeterminismRow {
        scripted_faults: plan_len,
        fired_faults: fired_a,
        journal_bytes: journal_a.len(),
        identical: journal_a == journal_b,
    };

    let mut table = Report::new(
        "overload",
        "Flash-crowd shedding, fairness and net-fault determinism",
        &["shards", "answered", "fleet_shed", "gw_shed", "greedy_rps", "fair_share", "p99_ms", "rps"],
        out,
    );
    for r in &rows {
        table.row(&[
            r.shards.to_string(),
            r.answered.to_string(),
            r.fleet_shed.to_string(),
            r.gateway_shed.to_string(),
            format!("{:.0}", r.greedy_rate),
            r.conn_rate.to_string(),
            f4(r.p99_ms),
            format!("{:.0}", r.rps),
        ]);
    }
    table.finish().expect("write overload.csv");
    println!(
        "net-fault determinism: {} faults fired, journals identical across reruns ({} bytes)",
        determinism.fired_faults, determinism.journal_bytes
    );

    let bench =
        OverloadBench { experiment: "overload".into(), scale: scale.factor(), rows, determinism };
    std::fs::create_dir_all(out).expect("create output dir");
    let json = serde_json::to_string_pretty(&bench).expect("serialize BENCH_overload");
    let path = out.join("BENCH_overload.json");
    std::fs::write(&path, &json).expect("write BENCH_overload.json");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_has_expected_shape() {
        let doc = OverloadBench {
            experiment: "overload".into(),
            scale: 1,
            rows: vec![OverloadRow {
                shards: 2,
                requests: 25_000,
                answered: 25_000,
                fair_shed: 1_200,
                processed: 24_000,
                dropped: 0,
                unavailable: 0,
                fleet_shed: 2_400,
                gateway_shed: 9_000,
                submitted: 26_400,
                greedy_admitted: 6_000,
                greedy_busy: 90_000,
                greedy_rate: 4_100.0,
                conn_rate: CONN_RATE,
                starved_conns: 0,
                p99_ms: 12.5,
                rps: 80_000.0,
            }],
            determinism: DeterminismRow {
                scripted_faults: 4,
                fired_faults: 4,
                journal_bytes: 180,
                identical: true,
            },
        };
        let s = serde_json::to_string_pretty(&doc).unwrap();
        assert!(s.contains("\"fleet_shed\""));
        assert!(s.contains("\"greedy_rate\""));
        assert!(s.contains("\"identical\": true"));
        assert!(s.contains("\"starved_conns\""));
    }

    #[test]
    fn netfault_plan_covers_every_kind() {
        let plan = netfault_plan();
        assert_eq!(plan.events().len(), 4);
        let kinds: Vec<_> = plan.events().iter().map(|e| e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, NetFaultKind::Reset)));
        assert!(kinds.iter().any(|k| matches!(k, NetFaultKind::Corrupt)));
        assert!(kinds.iter().any(|k| matches!(k, NetFaultKind::Stall { .. })));
        assert!(kinds.iter().any(|k| matches!(k, NetFaultKind::AcceptPause { .. })));
    }

    #[test]
    fn burst_trace_is_deterministic() {
        let scale = Scale::new(1);
        assert_eq!(burst_trace(&scale), burst_trace(&scale));
        assert_eq!(burst_trace(&scale).len(), scale.online_trace_len() / 8);
    }
}
