//! Figure 5: effectiveness of Darwin's components.
//!
//! * 5a — feature convergence: relative error of prefix features vs
//!   full-trace features ("within a 10 % error margin using only the first
//!   3M requests" of 10 M, i.e. a 30 % prefix; with warm-up at 3 % of the
//!   100 M online traces).
//! * 5b — CDF of the number of experts remaining per cluster set for
//!   θ ∈ {1, 2, 5} ("82 % reduction … with θ = 1; even with θ = 5, a 35 %
//!   reduction").
//! * 5c — cross-expert order-prediction accuracy CDF over all ordered pairs
//!   ("even with the strictest 1 % proximality, more than 90 % of the
//!   predictors reach > 80 % order prediction accuracy").
//! * 5d — bandit rounds until best-expert identification ("from the 12th
//!   round onwards ≥ 80 % of traces achieve stability; worst case 21").

use crate::corpus::SharedContext;
use crate::report::{f4, Report};
use crate::runs;
use darwin::offline::{EvaluatedTrace, OfflineTrainer};
use darwin::DarwinModel;
use darwin_cache::Objective;
use darwin_features::{max_relative_error, FeatureExtractor};
use std::path::Path;

/// Fig 5a: feature convergence over offline-length traces.
pub fn run_a(ctx: &SharedContext, out: &Path) {
    let mut rep = Report::new(
        "fig5a",
        "Fig 5a: max feature relative error (%) vs prefix fraction",
        &["prefix_pct", "mean_err_pct", "max_err_pct", "traces_within_10pct"],
        out,
    );
    let fractions = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let traces = &ctx.corpus.offline_train;
    for &frac in &fractions {
        let mut errs = Vec::new();
        for t in traces {
            let full = FeatureExtractor::extract(t);
            let prefix_len = (t.len() as f64 * frac) as usize;
            let prefix = FeatureExtractor::extract(&t.slice(0, prefix_len));
            errs.push(max_relative_error(&prefix, &full));
        }
        let s = runs::Stats::of(&errs);
        let within = errs.iter().filter(|&&e| e <= 10.0).count();
        rep.row(&[
            format!("{:.0}", frac * 100.0),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.max),
            format!("{}/{}", within, errs.len()),
        ]);
    }
    rep.finish().expect("write fig5a");
}

/// Fig 5b: expert-set sizes after clustering, for θ ∈ {1, 2, 5}.
pub fn run_b(ctx: &SharedContext, out: &Path) {
    let trainer = OfflineTrainer::new(ctx.offline_cfg.clone());
    let n_experts = ctx.offline_cfg.grid.len() as f64;
    let mut rep = Report::new(
        "fig5b",
        "Fig 5b: experts remaining per cluster set (CDF source) and reduction",
        &["theta_pct", "min_set", "median_set", "mean_set", "max_set", "avg_reduction_pct"],
        out,
    );
    for theta in [1.0, 2.0, 5.0] {
        let (assignment, sets) = trainer.cluster_expert_sets(&ctx.train_evals, theta, Objective::HocOhr);
        // Weight sets by how many traces map to them (what a trace sees).
        let sizes: Vec<f64> = assignment.iter().map(|&c| sets[c].len() as f64).collect();
        let s = runs::Stats::of(&sizes);
        let reduction = 100.0 * (1.0 - s.mean / n_experts);
        rep.row(&[
            format!("{theta}"),
            format!("{:.0}", s.min),
            format!("{:.0}", s.median),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.max),
            format!("{:.1}", reduction),
        ]);
    }
    rep.finish().expect("write fig5b");
}

/// Order-prediction accuracy of predictor (i, j) over held-out evaluations,
/// at proximality `k_pct` (in OHR percentage points).
pub fn order_accuracy(
    model: &DarwinModel,
    i: usize,
    j: usize,
    evals: &[EvaluatedTrace],
    k_pct: f64,
) -> f64 {
    let mut ok = 0usize;
    for ev in evals {
        let true_i = ev.hit_rates[i];
        let true_j = ev.hit_rates[j];
        if (true_i - true_j).abs() < k_pct / 100.0 {
            ok += 1; // proximal: counted as correct per the paper
            continue;
        }
        let pred_j = model.predict_hit_rate(i, j, true_i, &ev.extended);
        if (pred_j > true_i) == (true_j > true_i) {
            ok += 1;
        }
    }
    ok as f64 / evals.len().max(1) as f64
}

/// Fig 5c: order-prediction accuracy CDF over all ordered pairs. Requires a
/// model trained with `train_all_pairs` (the harness builds one when the
/// shared context doesn't have it).
pub fn run_c(ctx: &SharedContext, all_pairs_model: &DarwinModel, out: &Path) {
    let n = ctx.offline_cfg.grid.len();
    let mut rep = Report::new(
        "fig5c",
        "Fig 5c: cross-expert order-prediction accuracy",
        &["proximality_pct", "mean_acc", "p10_acc", "frac_predictors_above_80pct"],
        out,
    );
    for k in [1.0, 2.0, 5.0] {
        let mut accs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    accs.push(order_accuracy(all_pairs_model, i, j, &ctx.test_evals, k));
                }
            }
        }
        accs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        let p10 = accs[accs.len() / 10];
        let above80 = accs.iter().filter(|&&a| a > 0.8).count() as f64 / accs.len() as f64;
        rep.row(&[format!("{k}"), f4(mean), f4(p10), f4(above80)]);
    }
    rep.finish().expect("write fig5c");
}

/// Fig 5d: bandit rounds until identification, over the online test traces.
pub fn run_d(ctx: &SharedContext, out: &Path) {
    let cache = ctx.scale.cache_config();
    let mut rounds = Vec::new();
    let mut set_sizes = Vec::new();
    for trace in &ctx.corpus.online_test {
        let report = darwin::run_darwin(&ctx.model, &ctx.scale.online_config(), trace, &cache);
        if let Some(ep) = report.epochs.first() {
            rounds.push(ep.identify_rounds as f64);
            set_sizes.push(ep.set_size as f64);
        }
    }
    let mut rep = Report::new(
        "fig5d",
        "Fig 5d: bandit rounds until best-expert identification",
        &["quantity", "value"],
        out,
    );
    let r = runs::Stats::of(&rounds);
    let s = runs::Stats::of(&set_sizes);
    let mut sorted = rounds.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p80 = sorted[(((sorted.len() - 1) as f64) * 0.8).round() as usize];
    rep.row(&["traces".into(), format!("{}", rounds.len())]);
    rep.row(&["mean candidate set size".into(), format!("{:.1}", s.mean)]);
    rep.row(&["min rounds".into(), format!("{:.0}", r.min)]);
    rep.row(&["median rounds".into(), format!("{:.0}", r.median)]);
    rep.row(&["80th pct rounds (paper: ~12)".into(), format!("{p80:.0}")]);
    rep.row(&["max rounds (paper: 21)".into(), format!("{:.0}", r.max)]);
    rep.finish().expect("write fig5d");
}
