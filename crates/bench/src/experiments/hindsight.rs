//! Hindsight-optimality (requirement R1, §3.2.1): "the policy should offer
//! performance very close (e.g., within, say 1% in terms of the OHR) to the
//! 'hindsight optimal' policy".
//!
//! Over a wider set of held-out traces than the Fig 4 ensemble (three fresh
//! seeds per mix ratio), this experiment measures Darwin's end-to-end OHR
//! against the per-trace hindsight-best static expert and reports the loss
//! distribution and the fraction of traces within 1 % / 5 % / 10 %.
//!
//! Note the end-to-end number *includes* the warm-up and identification
//! phases served by non-final experts (≈ 3 % + ~13 % of the trace at this
//! scale), so a few percent of loss is structural exploration cost, not
//! misidentification; the paper's 100 M-request epochs amortize the same
//! cost to under 1 %. The `chosen-expert` column isolates identification
//! quality from exploration cost.

use crate::corpus::SharedContext;
use crate::report::{f4, Report};
use crate::runs;
use darwin::offline::OfflineTrainer;
use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
use std::path::Path;

/// Runs the hindsight-optimality study.
pub fn run(ctx: &SharedContext, out: &Path) {
    let cache = ctx.scale.cache_config();
    let len = ctx.scale.online_trace_len();
    let trainer = OfflineTrainer::new(ctx.offline_cfg.clone());

    // Fresh held-out traces: 3 seeds × the ratio sweep.
    let mut traces = Vec::new();
    for (ri, &share) in ctx.corpus.ratios.iter().enumerate() {
        for s in 0..3u64 {
            let mix = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), share);
            traces.push(TraceGenerator::new(mix, 60_000 + ri as u64 * 100 + s).generate(len));
        }
    }
    eprintln!("[hindsight] evaluating {} held-out traces ...", traces.len());
    let evals = trainer.evaluate_corpus(&traces);

    let mut rep = Report::new(
        "hindsight",
        "Hindsight-optimality: Darwin vs per-trace best static expert",
        &["trace", "darwin_ohr", "hindsight_ohr", "loss_pct", "chosen_gap_pct"],
        out,
    );
    // Each held-out trace's Darwin run is an independent work item; rows
    // are emitted in trace order afterwards so the report is identical at
    // any thread count.
    let per_trace = darwin_parallel::par_run(0, traces.len(), |ti| {
        let (trace, ev) = (&traces[ti], &evals[ti]);
        let report = darwin::run_darwin(&ctx.model, &ctx.scale.online_config(), trace, &cache);
        let darwin_ohr = report.metrics.hoc_ohr();
        let (_, best_ohr) = runs::hindsight_best(ev);
        let loss = (best_ohr - darwin_ohr) / best_ohr * 100.0;
        // Identification quality: how far is the *chosen* expert's static
        // OHR from the best static? (Excludes exploration cost.)
        let chosen_gap = report
            .epochs
            .first()
            .map(|ep| (best_ohr - ev.hit_rates[ep.chosen_expert]) / best_ohr * 100.0)
            .unwrap_or(100.0);
        (darwin_ohr, best_ohr, loss, chosen_gap)
    });
    let mut losses = Vec::new();
    let mut chosen_gaps = Vec::new();
    for (ti, (darwin_ohr, best_ohr, loss, chosen_gap)) in per_trace.into_iter().enumerate() {
        losses.push(loss);
        chosen_gaps.push(chosen_gap);
        rep.row(&[
            format!("t{ti}"),
            f4(darwin_ohr),
            f4(best_ohr),
            format!("{loss:.2}"),
            format!("{chosen_gap:.2}"),
        ]);
    }
    rep.finish().expect("write hindsight");

    let frac_within =
        |v: &[f64], pct: f64| v.iter().filter(|&&x| x <= pct).count() as f64 / v.len() as f64;
    let mut sum = Report::new(
        "hindsight_summary",
        "Hindsight-optimality summary",
        &["quantity", "end_to_end", "chosen_expert_only"],
        out,
    );
    let l = runs::Stats::of(&losses);
    let g = runs::Stats::of(&chosen_gaps);
    sum.row(&[
        "median loss vs hindsight (%)".into(),
        format!("{:.2}", l.median),
        format!("{:.2}", g.median),
    ]);
    sum.row(&["mean loss (%)".into(), format!("{:.2}", l.mean), format!("{:.2}", g.mean)]);
    sum.row(&["max loss (%)".into(), format!("{:.2}", l.max), format!("{:.2}", g.max)]);
    sum.row(&[
        "fraction within 1%".into(),
        f4(frac_within(&losses, 1.0)),
        f4(frac_within(&chosen_gaps, 1.0)),
    ]);
    sum.row(&[
        "fraction within 5%".into(),
        f4(frac_within(&losses, 5.0)),
        f4(frac_within(&chosen_gaps, 5.0)),
    ]);
    sum.row(&[
        "fraction within 10%".into(),
        f4(frac_within(&losses, 10.0)),
        f4(frac_within(&chosen_gaps, 10.0)),
    ]);
    sum.finish().expect("write hindsight summary");
}
