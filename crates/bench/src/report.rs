//! Experiment output: aligned console tables plus CSVs under `results/`.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A tabular experiment report.
pub struct Report {
    name: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    out_dir: PathBuf,
}

impl Report {
    /// Report `name` (file stem) with a human-readable `title`.
    pub fn new(name: &str, title: &str, header: &[&str], out_dir: &Path) -> Self {
        Self {
            name: name.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            out_dir: out_dir.to_path_buf(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: row from display-able values.
    pub fn rowd<T: std::fmt::Display>(&mut self, cells: &[T]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the report has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints the aligned table to stdout and writes `<out>/<name>.csv`.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        // Column widths.
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let fmt_row = |cells: &[String]| -> String {
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        println!("{}", fmt_row(&self.header));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }

        fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a float with 4 decimal places (hit rates, rewards).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float as a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_writes_csv() {
        let dir = std::env::temp_dir().join("darwin-report-test");
        let mut r = Report::new("t1", "Test", &["a", "b"], &dir);
        r.row(&["1".into(), "2".into()]);
        r.rowd(&[3.5, 4.5]);
        assert_eq!(r.len(), 2);
        let path = r.finish().unwrap();
        let s = std::fs::read_to_string(path).unwrap();
        assert_eq!(s, "a,b\n1,2\n3.5,4.5\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let dir = std::env::temp_dir();
        let mut r = Report::new("t2", "Test", &["a", "b"], &dir);
        r.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(pct(0.1234), "12.34");
    }
}
