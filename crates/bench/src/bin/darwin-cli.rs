//! `darwin-cli` — operate the Darwin pipeline on trace files.
//!
//! ```text
//! darwin-cli generate --class image --requests 100000 --seed 1 --out t.csv
//! darwin-cli generate --mix 0.3 --requests 100000 --out mix.csv
//! darwin-cli stats    --trace t.csv
//! darwin-cli hrc      --trace t.csv
//! darwin-cli simulate --trace t.csv --hoc-mb 16 --f 2 --s-kb 100
//! darwin-cli train    --traces a.csv,b.csv,c.csv --hoc-mb 16 --out model.json
//! darwin-cli run      --model model.json --trace t.csv --hoc-mb 16
//! ```
//!
//! Traces use the CSV interchange format of `darwin_trace::io`
//! (`timestamp_us,object_id,size_bytes`, `#` comments allowed).

use darwin::prelude::*;
use darwin_cache::EvictionKind;
use darwin_features::{synthesize, FootprintDescriptor};
use darwin_trace::{
    concat_traces, read_trace_file, write_trace_file, MixSpec, SizeModel, Trace, TraceGenerator,
    TraceStats, TrafficClass,
};
use std::collections::HashMap;
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: darwin-cli <generate|concat|synth|stats|hrc|simulate|train|run> [flags]\n\
         \n\
         generate --requests N [--class image|download|web] [--mix IMAGE_SHARE]\n\
         \x20        [--seed S] --out FILE\n\
         concat   --traces F1,F2,... --out FILE\n\
         synth    --from FILE --requests N [--seed S] [--median-kb KB]\n\
         \x20        [--sigma S] [--rate RPS] --out FILE\n\
         stats    --trace FILE\n\
         hrc      --trace FILE\n\
         simulate --trace FILE [--hoc-mb MB] [--dc-mb MB] [--f F] [--s-kb KB]\n\
         \x20        [--eviction lru|fifo|lfu|s4lru]\n\
         train    --traces F1,F2,... [--hoc-mb MB] [--objective ohr|bmr|combined]\n\
         \x20        [--theta PCT] [--clusters K] --out MODEL.json\n\
         run      --model MODEL.json --trace FILE [--hoc-mb MB] [--dc-mb MB]\n\
         \x20        [--epoch N] [--warmup N] [--round N]"
    );
    exit(2);
}

/// Parses `--key value` flags into a map; duplicate keys keep the last value.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--").unwrap_or_else(|| {
            eprintln!("expected a --flag, got {:?}", args[i]);
            usage()
        });
        let value = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("flag --{key} needs a value");
            usage()
        });
        flags.insert(key.to_string(), value);
        i += 2;
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("could not parse --{key} {v:?}");
            usage()
        }),
        None => default,
    }
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required flag --{key}");
        usage()
    })
}

fn load_trace(path: &str) -> Trace {
    read_trace_file(path).unwrap_or_else(|e| {
        eprintln!("failed to read trace {path}: {e}");
        exit(1);
    })
}

fn cache_config(flags: &HashMap<String, String>) -> CacheConfig {
    let hoc_mb: u64 = flag(flags, "hoc-mb", 16);
    let dc_mb: u64 = flag(flags, "dc-mb", hoc_mb * 100);
    CacheConfig {
        hoc_bytes: hoc_mb * 1024 * 1024,
        dc_bytes: dc_mb * 1024 * 1024,
        ..CacheConfig::paper_default()
    }
}

fn cmd_generate(flags: &HashMap<String, String>) {
    let n: usize = flag(flags, "requests", 100_000);
    let seed: u64 = flag(flags, "seed", 1);
    let out = required(flags, "out");
    let spec = if let Some(mix) = flags.get("mix") {
        let share: f64 = mix.parse().unwrap_or_else(|_| usage());
        if !(0.0..=1.0).contains(&share) {
            eprintln!("--mix must be in [0, 1] (the Image-class traffic share), got {share}");
            exit(2);
        }
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), share)
    } else {
        match flags.get("class").map(String::as_str).unwrap_or("image") {
            "image" => MixSpec::single(TrafficClass::image()),
            "download" => MixSpec::single(TrafficClass::download()),
            "web" => MixSpec::single(TrafficClass::web()),
            other => {
                eprintln!("unknown class {other:?}");
                usage()
            }
        }
    };
    let trace = TraceGenerator::new(spec, seed).generate(n);
    write_trace_file(&trace, out).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    });
    println!("wrote {} requests to {out}", trace.len());
}

fn cmd_concat(flags: &HashMap<String, String>) {
    let paths: Vec<&str> = required(flags, "traces").split(',').collect();
    let out = required(flags, "out");
    let traces: Vec<Trace> = paths.iter().map(|p| load_trace(p)).collect();
    let joined = concat_traces(&traces);
    write_trace_file(&joined, out).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    });
    println!("wrote {} requests ({} parts) to {out}", joined.len(), paths.len());
}

/// Tragen-style synthesis: measure the input trace's footprint descriptor
/// and emit a new trace with the same reuse-distance distribution (and
/// therefore the same LRU hit-rate curve at every cache size).
fn cmd_synth(flags: &HashMap<String, String>) {
    let source = load_trace(required(flags, "from"));
    let out = required(flags, "out");
    let n: usize = flag(flags, "requests", source.len());
    let seed: u64 = flag(flags, "seed", 1);
    let median_kb: f64 = flag(flags, "median-kb", 64.0);
    let sigma: f64 = flag(flags, "sigma", 1.3);
    let rate: f64 = flag(flags, "rate", 265.9);
    if source.is_empty() {
        eprintln!("source trace is empty");
        exit(1);
    }
    let fd = FootprintDescriptor::compute(&source);
    let sizes = SizeModel::from_median(median_kb * 1024.0, sigma, 128, 1 << 31);
    let synth = synthesize(&fd, &sizes, rate, n, seed);
    write_trace_file(&synth, out).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    });
    let fd2 = FootprintDescriptor::compute(&synth);
    println!(
        "wrote {} synthesized requests to {out} (predicted 16MB-LRU OHR: source {:.4}, synth {:.4})",
        synth.len(),
        fd.predicted_ohr(16 << 20),
        fd2.predicted_ohr(16 << 20),
    );
}

fn cmd_stats(flags: &HashMap<String, String>) {
    let trace = load_trace(required(flags, "trace"));
    let s = TraceStats::compute(&trace);
    println!("requests:                {}", s.requests);
    println!("unique objects:          {}", s.unique_objects);
    println!("total bytes:             {}", s.total_bytes);
    println!("mean request size:       {:.0} B", s.mean_size);
    println!("one-hit-wonder objects:  {:.1} %", s.one_hit_wonder_fraction * 100.0);
    println!("requests < 20 KB:        {:.1} %", s.frac_requests_below_20k * 100.0);
    println!("requests < 50 KB:        {:.1} %", s.frac_requests_below_50k * 100.0);
    println!("mean requests/object:    {:.2}", s.mean_requests_per_object);
}

fn cmd_hrc(flags: &HashMap<String, String>) {
    let trace = load_trace(required(flags, "trace"));
    let fd = FootprintDescriptor::compute(&trace);
    println!("{:>14} {:>8} {:>8}", "cache_bytes", "ohr", "bhr");
    for (c, ohr) in fd.hit_rate_curve() {
        println!("{c:>14} {ohr:>8.4} {:>8.4}", fd.predicted_bhr(c));
    }
    println!("unique bytes (working set): {}", fd.unique_bytes());
}

fn cmd_simulate(flags: &HashMap<String, String>) {
    let trace = load_trace(required(flags, "trace"));
    let f: u32 = flag(flags, "f", 2);
    let s_kb: u64 = flag(flags, "s-kb", 100);
    let mut cache = cache_config(flags);
    cache.hoc_eviction = match flags.get("eviction").map(String::as_str).unwrap_or("lru") {
        "lru" => EvictionKind::Lru,
        "fifo" => EvictionKind::Fifo,
        "lfu" => EvictionKind::Lfu,
        "s4lru" => EvictionKind::SegmentedLru { segments: 4 },
        other => {
            eprintln!("unknown eviction {other:?}");
            usage()
        }
    };
    let m = darwin::run_static(Expert::new(f, s_kb), &trace, &cache);
    println!("expert:            f{f}s{s_kb}");
    println!("hoc ohr:           {:.4}", m.hoc_ohr());
    println!("total ohr:         {:.4}", m.total_ohr());
    println!("hoc bmr:           {:.4}", m.hoc_bmr());
    println!("dc writes:         {} ({} bytes)", m.dc_writes, m.dc_write_bytes);
    println!("hoc evictions:     {}", m.hoc_evictions);
}

fn cmd_train(flags: &HashMap<String, String>) {
    let paths: Vec<&str> = required(flags, "traces").split(',').collect();
    let out = required(flags, "out");
    let traces: Vec<Trace> = paths.iter().map(|p| load_trace(p)).collect();
    let objective = match flags.get("objective").map(String::as_str).unwrap_or("ohr") {
        "ohr" => Objective::HocOhr,
        "bmr" => Objective::HocBmr,
        "combined" => Objective::combined_default(),
        other => {
            eprintln!("unknown objective {other:?}");
            usage()
        }
    };
    let hoc_mb: u64 = flag(flags, "hoc-mb", 16);
    let shortest = traces.iter().map(|t| t.len()).min().unwrap_or(0);
    let cfg = OfflineConfig {
        objective,
        hoc_bytes: hoc_mb * 1024 * 1024,
        theta_percent: flag(flags, "theta", 1.0),
        n_clusters: flag(flags, "clusters", 0usize),
        // Train the lookup on warm-up-sized prefixes (3 % of the shortest
        // trace, matching the default online configuration's proportions).
        feature_prefix_requests: (shortest * 3 / 100).max(1_000),
        ..OfflineConfig::default()
    };
    eprintln!(
        "training on {} traces x {} experts (HOC {hoc_mb} MB, objective {}) ...",
        traces.len(),
        cfg.grid.len(),
        objective.label()
    );
    let model = OfflineTrainer::new(cfg).train(&traces);
    model.save_to_file(out).unwrap_or_else(|e| {
        eprintln!("failed to write model {out}: {e}");
        exit(1);
    });
    println!(
        "model: {} clusters, sets {:?}, ~{} KiB -> {out}",
        model.num_clusters(),
        (0..model.num_clusters()).map(|c| model.expert_set(c).len()).collect::<Vec<_>>(),
        model.memory_footprint_bytes() / 1024,
    );
}

fn cmd_run(flags: &HashMap<String, String>) {
    let model = DarwinModel::load_from_file(required(flags, "model")).unwrap_or_else(|e| {
        eprintln!("failed to load model: {e}");
        exit(1);
    });
    let trace = load_trace(required(flags, "trace"));
    let cache = cache_config(flags);
    let epoch: usize = flag(flags, "epoch", trace.len().max(2));
    let online = OnlineConfig {
        epoch_requests: epoch,
        warmup_requests: flag(flags, "warmup", (epoch * 3 / 100).max(1)),
        round_requests: flag(flags, "round", (epoch / 100).max(50)),
        ..OnlineConfig::default()
    };
    let model = Arc::new(model);
    let report = darwin::run_darwin(&model, &online, &trace, &cache);
    println!("hoc ohr:     {:.4}", report.metrics.hoc_ohr());
    println!("hoc bmr:     {:.4}", report.metrics.hoc_bmr());
    println!("switches:    {}", report.switches.len());
    for (i, ep) in report.epochs.iter().enumerate() {
        println!(
            "epoch {:>2}: cluster {} set {} rounds {} -> {}",
            i + 1,
            ep.cluster,
            ep.set_size,
            ep.identify_rounds,
            model.grid().get(ep.chosen_expert).label()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "concat" => cmd_concat(&flags),
        "synth" => cmd_synth(&flags),
        "stats" => cmd_stats(&flags),
        "hrc" => cmd_hrc(&flags),
        "simulate" => cmd_simulate(&flags),
        "train" => cmd_train(&flags),
        "run" => cmd_run(&flags),
        _ => usage(),
    }
}
