//! Diagnostic tool: for each online test trace, print the cluster Darwin
//! mapped it to, the candidate expert set, the bandit's choice, and how that
//! compares with the hindsight-best static expert.
//!
//! ```text
//! inspect [--scale N] [--trace IDX] [--fleet SHARDS]
//!         [--watch ADDR] [--interval-ms N] [--tail N]
//! ```
//!
//! `--fleet SHARDS` skips the Darwin pipeline entirely and instead replays a
//! generated trace through a static-expert [`ShardedFleet`], printing the
//! final [`FleetMetrics`] snapshot as JSON — byte-for-byte the same document
//! (and the same `FleetMetrics::to_json` code path) a gateway `STATS` frame
//! returns, minus the gateway's connection counters.
//!
//! `--watch ADDR` attaches a live dashboard to a running gateway: it polls
//! `STATS` and `EVENTS` frames every `--interval-ms` (default 1000) and
//! redraws per-shard rps, p50/p99 serve latency, queue depth,
//! restart/warm counters and the last `--tail` journal events. The loop
//! exits when the gateway stops answering (e.g. after a shutdown).

use darwin_bench::{runs, watch, Scale, SharedContext};
use darwin_cache::ThresholdPolicy;
use darwin_gateway::loadgen;
use darwin_shard::{FleetConfig, FleetMetrics, HashRouter, ShardedFleet};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
use std::time::Duration;

/// Replays a generated trace through a `shards`-wide static fleet and prints
/// the final metrics snapshot JSON (the gateway `STATS` code path).
fn inspect_fleet(scale: &Scale, shards: usize) {
    let trace = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        2025,
    )
    .generate(scale.online_trace_len());
    let mut fleet = ShardedFleet::new(
        FleetConfig::with_shards(shards),
        scale.cache_config(),
        Box::new(HashRouter),
        |_| StaticDriver::new(ThresholdPolicy::new(2, 100 * 1024)),
    );
    fleet.submit_trace(&trace);
    let report = fleet.finish();
    let snapshot: &FleetMetrics = report.snapshots.last().expect("final snapshot always taken");
    println!("{}", snapshot.to_json());
}

/// Polls a gateway's `STATS` + `EVENTS` frames and redraws the dashboard
/// until the gateway stops answering.
fn watch_gateway(addr: &str, interval: Duration, tail: usize) {
    let mut prev: Option<FleetMetrics> = None;
    loop {
        let metrics = match loadgen::fetch_stats(addr).map(|j| FleetMetrics::from_json(&j)) {
            Ok(Ok(m)) => m,
            Ok(Err(e)) => {
                eprintln!("watch: bad STATS reply: {e}");
                return;
            }
            Err(e) => {
                eprintln!("watch: gateway at {addr} stopped answering: {e}");
                return;
            }
        };
        let journals = loadgen::fetch_events(addr).unwrap_or_default();
        // ANSI clear + home, then one freshly rendered frame.
        print!("\x1b[2J\x1b[H{}", watch::render(prev.as_ref(), &metrics, &journals, interval, tail));
        prev = Some(metrics);
        std::thread::sleep(interval);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_factor = 1usize;
    let mut only: Option<usize> = None;
    let mut fleet: Option<usize> = None;
    let mut watch_addr: Option<String> = None;
    let mut interval = Duration::from_millis(1_000);
    let mut tail = watch::DEFAULT_EVENT_TAIL;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale_factor = args[i].parse().expect("scale");
            }
            "--trace" => {
                i += 1;
                only = Some(args[i].parse().expect("trace idx"));
            }
            "--fleet" => {
                i += 1;
                fleet = Some(args[i].parse().expect("fleet shards"));
            }
            "--watch" => {
                i += 1;
                watch_addr = Some(args[i].clone());
            }
            "--interval-ms" => {
                i += 1;
                interval = Duration::from_millis(args[i].parse().expect("interval ms"));
            }
            "--tail" => {
                i += 1;
                tail = args[i].parse().expect("tail");
            }
            other => panic!("unknown arg {other}"),
        }
        i += 1;
    }
    if let Some(addr) = watch_addr {
        watch_gateway(&addr, interval, tail);
        return;
    }
    let scale = Scale::new(scale_factor);
    if let Some(shards) = fleet {
        inspect_fleet(&scale, shards);
        return;
    }
    let ctx = SharedContext::build(scale, false);
    let cache = scale.cache_config();

    // Show the offline cluster sets first.
    println!("clusters: {}", ctx.model.num_clusters());
    for c in 0..ctx.model.num_clusters() {
        let labels: Vec<String> =
            ctx.model.expert_set(c).iter().map(|&e| runs::expert_label(ctx.model.grid(), e)).collect();
        println!("  cluster {c}: {}", labels.join(" "));
    }

    for (ti, trace) in ctx.corpus.online_test.iter().enumerate() {
        if let Some(o) = only {
            if o != ti {
                continue;
            }
        }
        let report = darwin::run_darwin(&ctx.model, &scale.online_config(), trace, &cache);
        let ev = &ctx.online_evals[ti];
        let (best, best_ohr) = runs::hindsight_best(ev);
        println!(
            "\ntrace mix{ti}: darwin_ohr={:.4} hindsight={} ({:.4}) switches={}",
            report.metrics.hoc_ohr(),
            runs::expert_label(ctx.model.grid(), best),
            best_ohr,
            report.switches.len(),
        );
        for ep in &report.epochs {
            let chosen_label = runs::expert_label(ctx.model.grid(), ep.chosen_expert);
            let chosen_static_ohr = ev.hit_rates[ep.chosen_expert];
            println!(
                "  epoch: cluster={} set={} rounds={} chosen={} (static ohr {:.4})",
                ep.cluster, ep.set_size, ep.identify_rounds, chosen_label, chosen_static_ohr
            );
        }
        // What the cluster set contained (via a fresh lookup on the full
        // trace features — may differ from the warm-up lookup).
        let full_features = darwin_features::FeatureExtractor::extract(trace);
        let c_full = ctx.model.lookup_cluster(&full_features);
        println!("  full-trace feature cluster: {c_full}");
    }
}
