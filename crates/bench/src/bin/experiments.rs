//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <what> [--scale N] [--out DIR] [--resize-to M]
//!
//! what: all | fig2 | fig4a | fig4b | fig4c | fig5a | fig5b | fig5c | fig5d
//!     | fig6 | fig7a | fig7b | table2 | fig8 | fig9 | fig10 | fig11
//!     | ablations | timeline | hindsight | shard | gateway | chaos | recovery
//!     | failover | switching | rebalance | overload
//! ```
//!
//! `--scale 1` (default) is the laptop configuration; larger factors move
//! toward the paper's trace lengths and cache sizes proportionally.
//! `--cache` persists the expensive expert evaluations under the output
//! directory and reuses them on later invocations at the same scale.
//! `--resize-to M` (rebalance only, default 8) sets the mid-run shard
//! count: the elastic schedule becomes 4 → M → 4.

use darwin::offline::OfflineTrainer;
use darwin_bench::experiments::{
    ablations, chaos, failover, fig2, fig4, fig5, fig6, fig7, fig8_11, gateway, hindsight, overload,
    rebalance, recovery, shard, switching, table2, timeline,
};
use darwin_bench::{Scale, SharedContext};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <all|fig2|fig4a|fig4b|fig4c|fig5a|fig5b|fig5c|fig5d|fig6|fig7a|fig7b|table2|fig8|fig9|fig10|fig11|ablations|timeline|hindsight|shard|gateway|chaos|recovery|failover|switching|rebalance|overload> [--scale N] [--out DIR] [--cache] [--resize-to M]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let what = args[0].clone();
    let mut scale_factor = 1usize;
    let mut out = PathBuf::from("results");
    let mut use_cache = false;
    let mut resize_to = 8usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale_factor = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--cache" => {
                use_cache = true;
            }
            "--resize-to" => {
                i += 1;
                resize_to = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    let scale = Scale::new(scale_factor);

    // Validate the experiment name before building anything expensive.
    const KNOWN: &[&str] = &[
        "all",
        "fig2",
        "fig4a",
        "fig4b",
        "fig4c",
        "fig5a",
        "fig5b",
        "fig5c",
        "fig5d",
        "fig6",
        "fig7a",
        "fig7b",
        "table2",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "ablations",
        "timeline",
        "hindsight",
        "shard",
        "gateway",
        "chaos",
        "recovery",
        "failover",
        "switching",
        "rebalance",
        "overload",
    ];
    if !KNOWN.contains(&what.as_str()) {
        eprintln!("unknown experiment {what:?}");
        usage();
    }

    // fig2 and the serving-layer sweeps need no shared context.
    if what == "fig2" {
        fig2::run(&scale, &out);
        return;
    }
    if what == "shard" {
        shard::run(&scale, &out);
        return;
    }
    if what == "gateway" {
        gateway::run(&scale, &out);
        return;
    }
    if what == "chaos" {
        chaos::run(&scale, &out);
        return;
    }
    if what == "recovery" {
        recovery::run(&scale, &out);
        return;
    }
    if what == "failover" {
        failover::run(&scale, &out);
        return;
    }
    if what == "switching" {
        switching::run(&scale, &out);
        return;
    }
    if what == "rebalance" {
        rebalance::run_with(&scale, &out, resize_to);
        return;
    }
    if what == "overload" {
        overload::run(&scale, &out);
        return;
    }

    // Experiments needing the all-pairs predictor model.
    let needs_all_pairs = matches!(what.as_str(), "all" | "fig5c" | "fig10");
    eprintln!("[experiments] building shared context at scale {scale_factor} ...");
    let t0 = std::time::Instant::now();
    let ctx = SharedContext::build_with_cache(scale, false, use_cache.then_some(out.as_path()));
    eprintln!("[experiments] context ready in {:.1}s", t0.elapsed().as_secs_f64());

    let all_pairs_model = if needs_all_pairs {
        eprintln!("[experiments] training all-pairs predictor model (Fig 5c / Fig 10) ...");
        let mut cfg = ctx.offline_cfg.clone();
        cfg.train_all_pairs = true;
        Some(OfflineTrainer::new(cfg).train_from_evaluations(&ctx.train_evals))
    } else {
        None
    };

    let run_one = |name: &str| match name {
        "fig2" => fig2::run(&scale, &out),
        "fig4a" => fig4::run_a(&ctx, &out),
        "fig4b" => fig4::run_b(&ctx, &out),
        "fig4c" => fig4::run_c(&ctx, &out),
        "fig5a" => fig5::run_a(&ctx, &out),
        "fig5b" => fig5::run_b(&ctx, &out),
        "fig5c" => fig5::run_c(&ctx, all_pairs_model.as_ref().expect("all-pairs model"), &out),
        "fig5d" => fig5::run_d(&ctx, &out),
        "fig6" => fig6::run(&ctx, &out),
        "fig7a" => fig7::run_a(&ctx, &out),
        "fig7b" => fig7::run_b(&ctx, &out),
        "table2" => table2::run(&ctx, &out),
        "fig8" => fig8_11::run_fig8(&ctx, &out),
        "fig9" => fig8_11::run_fig9(&ctx, &out),
        "fig10" => fig8_11::run_fig10(&ctx, all_pairs_model.as_ref().expect("all-pairs model"), &out),
        "fig11" => fig8_11::run_fig11(&ctx, &out),
        "ablations" => ablations::run(&ctx, &out),
        "timeline" => timeline::run(&ctx, &out),
        "hindsight" => hindsight::run(&ctx, &out),
        "shard" => shard::run(&scale, &out),
        "gateway" => gateway::run(&scale, &out),
        "chaos" => chaos::run(&scale, &out),
        "recovery" => recovery::run(&scale, &out),
        "failover" => failover::run(&scale, &out),
        "switching" => switching::run(&scale, &out),
        "rebalance" => rebalance::run_with(&scale, &out, resize_to),
        "overload" => overload::run(&scale, &out),
        _ => usage(),
    };

    if what == "all" {
        for name in [
            "fig2",
            "fig4a",
            "fig4b",
            "fig4c",
            "fig5a",
            "fig5b",
            "fig5c",
            "fig5d",
            "fig6",
            "fig7a",
            "fig7b",
            "table2",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
            "timeline",
            "hindsight",
            "shard",
            "gateway",
            "chaos",
            "recovery",
            "failover",
            "switching",
            "rebalance",
            "overload",
        ] {
            let t = std::time::Instant::now();
            eprintln!("\n[experiments] ===== {name} =====");
            run_one(name);
            eprintln!("[experiments] {name} done in {:.1}s", t.elapsed().as_secs_f64());
        }
    } else {
        run_one(&what);
    }
}
