//! # darwin-bench
//!
//! The experiment harness: one module per table/figure of the paper, all
//! reachable from the `experiments` binary. Each experiment prints the rows
//! or series the paper reports and writes a CSV under `results/`.
//!
//! The paper's evaluation runs 10 M–100 M-request traces against a 100 MB
//! HOC on a 16-core testbed; this reproduction defaults to a proportionally
//! scaled-down setup (see [`scale::Scale`]) so the full suite completes on a
//! laptop core. Pass `--scale N` to the binary to move toward paper scale.

pub mod corpus;
pub mod report;
pub mod runs;
pub mod scale;
pub mod watch;

pub mod experiments {
    //! One module per paper table/figure (see DESIGN.md's experiment index).
    pub mod ablations;
    pub mod chaos;
    pub mod failover;
    pub mod fig2;
    pub mod fig4;
    pub mod fig5;
    pub mod fig6;
    pub mod fig7;
    pub mod fig8_11;
    pub mod gateway;
    pub mod hindsight;
    pub mod overload;
    pub mod rebalance;
    pub mod recovery;
    pub mod shard;
    pub mod switching;
    pub mod table2;
    pub mod timeline;
}

pub use corpus::{Corpus, SharedContext};
pub use report::Report;
pub use scale::Scale;
