//! The `inspect --watch` dashboard: renders one frame of a polling
//! terminal view over a gateway's `STATS` + `EVENTS` replies.
//!
//! The render path is pure — two [`FleetMetrics`] snapshots (previous and
//! current, for rate deltas), the fleet's journals and the poll interval in,
//! one string out — so the layout is unit-testable without a gateway. The
//! binary loop in `inspect.rs` does the fetching, clearing and sleeping.

use darwin_shard::{FleetMetrics, JournalSnapshot, ShardSnapshot};
use std::fmt::Write;
use std::time::Duration;

/// How many journal events the dashboard tails across all shards.
pub const DEFAULT_EVENT_TAIL: usize = 12;

/// Formats nanoseconds as a compact human latency ("873ns", "1.2µs",
/// "3.4ms", "2.1s").
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Per-shard requests/second between two snapshots (0 when the interval is
/// degenerate or the shard is new).
fn shard_rps(prev: Option<&FleetMetrics>, cur: &ShardSnapshot, interval: Duration) -> f64 {
    let secs = interval.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    let before =
        prev.and_then(|p| p.shards.iter().find(|s| s.shard == cur.shard)).map_or(0, |s| s.processed);
    cur.processed.saturating_sub(before) as f64 / secs
}

/// Renders one dashboard frame.
///
/// `prev` is the previous poll's snapshot (rates read 0 on the first frame),
/// `interval` the time between the two polls, and `tail` the number of
/// journal events shown (newest last, merged across shards by sequence
/// stamp).
pub fn render(
    prev: Option<&FleetMetrics>,
    cur: &FleetMetrics,
    journals: &[(u32, JournalSnapshot)],
    interval: Duration,
    tail: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "darwin fleet — {} shard(s), generation {}, {:.1}s poll",
        cur.shards.len(),
        cur.router_generation(),
        interval.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "{:>5} {:>12} {:>10} {:>7} {:>9} {:>9} {:>9} {:>14} {:>4} {:<12}",
        "shard", "processed", "rps", "queue", "p50", "p99", "ohr", "restarts(warm)", "gen", "state"
    );
    for s in &cur.shards {
        let (p50, p99) = s
            .latency
            .as_ref()
            .map(|l| (fmt_ns(l.serve.quantile(50.0)), fmt_ns(l.serve.quantile(99.0))))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        // Dead beats drain phase; an engaged shed watermark beats "serving"
        // (overload is exactly what a watcher is looking for); otherwise
        // show where the shard sits in the handoff state machine
        // (serving / draining / transferring / retired).
        let state = if s.dead {
            "DEAD"
        } else if s.shedding {
            "SHED"
        } else if s.phase.is_empty() {
            "serving"
        } else {
            s.phase.as_str()
        };
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>10.0} {:>7} {:>9} {:>9} {:>9.4} {:>14} {:>4} {:<12}",
            s.shard,
            s.processed,
            shard_rps(prev, s, interval),
            s.queue_depth,
            p50,
            p99,
            s.cache.hoc_ohr(),
            format!("{}({})", s.restarts, s.warm_restarts + s.warm_boots),
            s.router_generation,
            state,
        );
    }
    let _ = writeln!(
        out,
        "fleet: processed {} dropped {} unavailable {} shed {} ohr {:.4}",
        cur.total_processed(),
        cur.total_dropped(),
        cur.total_unavailable(),
        cur.total_shed(),
        cur.fleet_cache().hoc_ohr(),
    );
    if let Some(gw) = &cur.gateway {
        let _ = writeln!(
            out,
            "gateway: conns {}/{} active, frames_in {} rejected {}, stats {} events {}",
            gw.connections_active,
            gw.connections_accepted,
            gw.frames_in,
            gw.frames_rejected,
            gw.stats_served,
            gw.events_served,
        );
        let _ = writeln!(
            out,
            "overload: gw-shed {} throttled {} slow-closed {} net-faults {}, {} shard(s) shedding",
            gw.shed,
            gw.throttled,
            gw.slow_closed,
            gw.net_faults,
            cur.shedding_shards(),
        );
    }

    // Merge every shard's journal into one tail ordered by sequence stamp
    // (ties by shard), newest last.
    let mut merged: Vec<(u32, &darwin_shard::Event)> =
        journals.iter().flat_map(|(shard, j)| j.events.iter().map(move |e| (*shard, e))).collect();
    merged.sort_by_key(|(shard, e)| (e.seq, *shard));
    let dropped: u64 = journals.iter().map(|(_, j)| j.dropped).sum();
    if !merged.is_empty() || dropped > 0 {
        let _ = writeln!(
            out,
            "events (last {} of {}, {} dropped):",
            tail.min(merged.len()),
            merged.len(),
            dropped
        );
        let skip = merged.len().saturating_sub(tail);
        for (shard, e) in &merged[skip..] {
            let _ = writeln!(out, "  s{shard} {}", e.render());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_cache::CacheMetrics;
    use darwin_shard::{Event, EventKind, LatencySnapshot};

    fn shard(index: usize, processed: u64) -> ShardSnapshot {
        let mut latency = LatencySnapshot::default();
        // 1000 serve samples at 1ms: p50 and p99 land in 1ms's bucket.
        let h = darwin_obs::Histogram::new();
        for _ in 0..1000 {
            h.record(1_000_000);
        }
        latency.serve = h.snapshot();
        ShardSnapshot {
            shard: index,
            processed,
            dropped: 0,
            unavailable: 0,
            restarts: 1,
            warm_restarts: 1,
            warm_boots: 0,
            router_generation: 2,
            phase: "draining".into(),
            dead: false,
            checkpoint_seq: Some(512),
            checkpoint_age: 10,
            failovers: 0,
            replica_seq: None,
            replica_shipped_bytes: 0,
            standby_lost: 0,
            queue_depth: 3,
            queue_high_water: 9,
            shed: 0,
            shedding: false,
            cache: CacheMetrics::default(),
            policy: "static".into(),
            latency: Some(latency),
            events_dropped: 0,
            events: Vec::new(),
        }
    }

    #[test]
    fn render_reports_rates_latencies_and_event_tail() {
        let prev = FleetMetrics::from_shards(vec![shard(0, 1_000)]);
        let cur = FleetMetrics::from_shards(vec![shard(0, 3_000)]);
        let journals = vec![(
            0u32,
            JournalSnapshot {
                dropped: 0,
                events: vec![
                    Event { seq: 900, kind: EventKind::WorkerDeath },
                    Event { seq: 900, kind: EventKind::RestoreCold },
                ],
            },
        )];
        let frame = render(Some(&prev), &cur, &journals, Duration::from_secs(2), 8);
        // 2000 requests over 2s = 1000 rps.
        assert!(frame.contains("1000"), "rps delta rendered:\n{frame}");
        // 1ms samples render as their bucket floor (≤3.1% under 1ms).
        assert!(frame.contains("999.4µs"), "latency quantiles rendered:\n{frame}");
        assert!(frame.contains("worker-death"), "event tail rendered:\n{frame}");
        assert!(frame.contains("restore-cold"), "event tail rendered:\n{frame}");
        assert!(frame.contains("1(1)"), "restart counters rendered:\n{frame}");
        assert!(frame.contains("generation 2"), "fleet generation rendered:\n{frame}");
        assert!(frame.contains("draining"), "drain phase rendered:\n{frame}");
    }

    #[test]
    fn render_first_frame_and_empty_journals() {
        let cur = FleetMetrics::from_shards(vec![shard(0, 500), shard(1, 700)]);
        let frame = render(None, &cur, &[], Duration::from_secs(1), 8);
        assert!(frame.contains("2 shard(s)"));
        assert!(!frame.contains("events ("), "no event section without events:\n{frame}");
    }

    #[test]
    fn event_tail_is_bounded_and_ordered() {
        let cur = FleetMetrics::from_shards(vec![shard(0, 1)]);
        let events: Vec<Event> = (0..20)
            .map(|i| Event { seq: i, kind: EventKind::CheckpointCut { checkpoint_seq: i } })
            .collect();
        let journals = vec![(0u32, JournalSnapshot { dropped: 2, events })];
        let frame = render(None, &cur, &journals, Duration::from_secs(1), 4);
        assert!(frame.contains("events (last 4 of 20, 2 dropped):"));
        assert!(!frame.contains("seq=15"), "older events trimmed:\n{frame}");
        assert!(frame.contains("seq=19"), "newest events kept:\n{frame}");
    }

    #[test]
    fn render_surfaces_overload_state() {
        let mut s = shard(0, 100);
        s.shedding = true;
        s.shed = 42;
        s.phase = String::new();
        let cur = FleetMetrics::from_shards(vec![s]).with_gateway(darwin_shard::GatewaySnapshot {
            shed: 7,
            throttled: 3,
            slow_closed: 1,
            net_faults: 2,
            ..Default::default()
        });
        let frame = render(None, &cur, &[], Duration::from_secs(1), 8);
        assert!(frame.contains("SHED"), "engaged watermark surfaces as state:\n{frame}");
        assert!(frame.contains("shed 42"), "fleet shed total rendered:\n{frame}");
        assert!(
            frame.contains("overload: gw-shed 7 throttled 3 slow-closed 1 net-faults 2"),
            "gateway overload line rendered:\n{frame}"
        );
        assert!(frame.contains("1 shard(s) shedding"), "shedding gauge rendered:\n{frame}");
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(873), "873ns");
        assert_eq!(fmt_ns(1_200), "1.2µs");
        assert_eq!(fmt_ns(3_400_000), "3.4ms");
        assert_eq!(fmt_ns(2_100_000_000), "2.10s");
    }
}
