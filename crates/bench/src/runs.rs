//! Shared runners: Darwin and every baseline on one trace, returning the
//! headline metrics. Used by Fig 4, Fig 6 and Table 2.

use crate::scale::Scale;
use darwin::offline::EvaluatedTrace;
use darwin::{run_darwin, DarwinModel, Expert, ExpertGrid};
use darwin_baselines::{AdaptSize, DirectMapping, HillClimbing, Percentile};
use darwin_cache::{CacheConfig, CacheMetrics, ThresholdPolicy};
use darwin_nn::TrainConfig;
use darwin_trace::Trace;
use std::sync::Arc;

/// All adaptive baselines, pre-configured at a scale.
pub struct BaselineSuite {
    percentile: Percentile,
    hc10: HillClimbing,
    hc20: HillClimbing,
    adaptsize: AdaptSize,
    direct: DirectMapping,
}

impl BaselineSuite {
    /// Builds the suite; DirectMapping trains on the provided offline
    /// evaluations (the same data Darwin trained on), and Percentile tunes
    /// its percentile pair on `tuning_traces` (the paper tunes them "to be
    /// the best-performing ones for this window size").
    pub fn build(
        scale: &Scale,
        grid: &ExpertGrid,
        train_evals: &[EvaluatedTrace],
        tuning_traces: &[Trace],
        cache: &CacheConfig,
    ) -> Self {
        let online = scale.online_config();
        let start = ThresholdPolicy::new(4, 100 * 1024);
        let percentile = if tuning_traces.is_empty() {
            Percentile::new(grid.clone(), scale.percentile_window())
        } else {
            Percentile::tuned(grid.clone(), scale.percentile_window(), tuning_traces, cache)
        };
        Self {
            percentile,
            hc10: HillClimbing::new(start, 10 * 1024, scale.hillclimb_window()),
            hc20: HillClimbing::new(start, 20 * 1024, scale.hillclimb_window()),
            adaptsize: AdaptSize::new(scale.adaptsize_window(), 42),
            direct: DirectMapping::train(
                grid.clone(),
                train_evals,
                online.epoch_requests,
                online.warmup_requests,
                &TrainConfig { epochs: 400, ..TrainConfig::default() },
                7,
            ),
        }
    }

    /// Runs every adaptive baseline on `trace`, returning `(label, metrics)`
    /// pairs in a fixed order. The five runs are independent full-trace
    /// simulations, so they fan out across workers; output order (and every
    /// metric bit) is identical at any thread count.
    pub fn run_all(&self, trace: &Trace, cache: &CacheConfig) -> Vec<(String, CacheMetrics)> {
        darwin_parallel::par_run(0, 5, |i| match i {
            0 => ("Percentile".into(), self.percentile.run(trace, cache)),
            1 => ("HC-10".into(), self.hc10.run(trace, cache)),
            2 => ("HC-20".into(), self.hc20.run(trace, cache)),
            3 => ("AdaptSize".into(), self.adaptsize.run(trace, cache)),
            _ => ("Direct".into(), self.direct.run(trace, cache)),
        })
    }
}

/// Runs Darwin on `trace` and returns its metrics.
pub fn darwin_metrics(
    model: &Arc<DarwinModel>,
    scale: &Scale,
    trace: &Trace,
    cache: &CacheConfig,
) -> CacheMetrics {
    run_darwin(model, &scale.online_config(), trace, cache).metrics
}

/// Percentage improvement of `ours` over `theirs` (guarding tiny bases).
pub fn improvement_pct(ours: f64, theirs: f64) -> f64 {
    if theirs.abs() < 1e-9 {
        return 0.0;
    }
    (ours - theirs) / theirs.abs() * 100.0
}

/// Summary statistics of a sample.
pub struct Stats {
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl Stats {
    /// Computes stats; panics on empty input. NaN-tolerant (`total_cmp`
    /// sorts NaNs to the ends instead of panicking); the median of an
    /// even-length sample is the mean of the two middle elements.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "stats of empty sample");
        let mut v = values.to_vec();
        v.sort_by(f64::total_cmp);
        let mid = v.len() / 2;
        let median = if v.len().is_multiple_of(2) { (v[mid - 1] + v[mid]) / 2.0 } else { v[mid] };
        Self { min: v[0], median, mean: v.iter().sum::<f64>() / v.len() as f64, max: v[v.len() - 1] }
    }
}

/// The best static expert's value for a trace (hindsight optimum).
pub fn hindsight_best(ev: &EvaluatedTrace) -> (usize, f64) {
    let best = ev.best_expert();
    (best, ev.rewards[best])
}

/// Label helper: `f2s10`-style names for grid experts.
pub fn expert_label(grid: &ExpertGrid, idx: usize) -> String {
    grid.get(idx).label()
}

/// A handful of representative static experts for prototype-style runs.
pub fn representative_static(grid: &ExpertGrid) -> Vec<Expert> {
    let mut picks = Vec::new();
    for e in grid.experts() {
        if (e.f() == 2 || e.f() == 5) && matches!(e.s_bytes() / 1024, 20 | 100 | 1000) {
            picks.push(*e);
        }
    }
    picks
}

/// A small tuning sample spanning the corpus's mix ratios (strided, ≤ 4
/// traces) — used to tune the Percentile baseline without biasing it toward
/// one end of the sweep.
pub fn tuning_sample(traces: &[Trace]) -> Vec<Trace> {
    if traces.is_empty() {
        return Vec::new();
    }
    let stride = (traces.len() / 4).max(1);
    traces.iter().step_by(stride).take(4).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_median_averages_middle_pair_for_even_samples() {
        let s = Stats::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        let s = Stats::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.median, 2.0);
        let s = Stats::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn stats_tolerates_nan_without_panicking() {
        // `total_cmp` sorts positive NaN last: min stays real, max reflects
        // the degenerate sample instead of aborting the experiment run.
        let s = Stats::of(&[2.0, f64::NAN, 1.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert!(s.max.is_nan());
    }

    #[test]
    fn improvement_pct_guards_tiny_bases() {
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
        assert!((improvement_pct(1.2, 1.0) - 20.0).abs() < 1e-9);
        assert!((improvement_pct(0.8, 1.0) + 20.0).abs() < 1e-9);
    }
}
