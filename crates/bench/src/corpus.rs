//! Corpus construction and the shared experiment context.
//!
//! Mirrors §6 "CDN Traces": synthetic Image/Download mixes at a sweep of
//! ratios; several seeds per ratio form the offline training set, held-out
//! seeds form the offline test set, and longer single traces per ratio form
//! the online test set. An "ensemble" subset groups online traces by their
//! best static expert and picks one per group (the Fig 4 methodology).

use crate::scale::Scale;
use darwin::offline::{EvaluatedTrace, OfflineConfig, OfflineTrainer};
use darwin::{DarwinModel, ExpertGrid};
use darwin_nn::TrainConfig;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// On-disk form of the cached evaluations.
#[derive(Serialize, Deserialize)]
struct CachedEvals {
    grid_len: usize,
    train: Vec<EvaluatedTrace>,
    test: Vec<EvaluatedTrace>,
    online: Vec<EvaluatedTrace>,
}

/// The standard experiment corpus.
pub struct Corpus {
    /// Mix ratios (share of Image traffic) used in the sweep.
    pub ratios: Vec<f64>,
    /// Offline training traces (several seeds per ratio).
    pub offline_train: Vec<Trace>,
    /// Offline held-out traces (one per ratio).
    pub offline_test: Vec<Trace>,
    /// Online test traces (one longer trace per ratio).
    pub online_test: Vec<Trace>,
}

impl Corpus {
    /// Builds the corpus at the given scale: `n_ratios` mixes from 100:0 to
    /// 0:100, `train_seeds` offline traces per mix.
    pub fn build(scale: &Scale, n_ratios: usize, train_seeds: usize) -> Self {
        assert!(n_ratios >= 2, "need at least the two pure mixes");
        let ratios: Vec<f64> = (0..n_ratios).map(|i| 1.0 - i as f64 / (n_ratios - 1) as f64).collect();
        let mix =
            |share: f64| MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), share);

        let mut offline_train = Vec::new();
        let mut offline_test = Vec::new();
        let mut online_test = Vec::new();
        for (ri, &share) in ratios.iter().enumerate() {
            for s in 0..train_seeds {
                let seed = (ri * 1000 + s) as u64 + 1;
                offline_train
                    .push(TraceGenerator::new(mix(share), seed).generate(scale.offline_trace_len()));
            }
            offline_test.push(
                TraceGenerator::new(mix(share), (ri * 1000 + 900) as u64)
                    .generate(scale.offline_trace_len()),
            );
            online_test.push(
                TraceGenerator::new(mix(share), (ri * 1000 + 500) as u64)
                    .generate(scale.online_trace_len()),
            );
        }
        Self { ratios, offline_train, offline_test, online_test }
    }
}

/// Heavyweight shared state built once and reused across experiments in an
/// `experiments all` run: the corpus, the offline evaluations, and a trained
/// model.
pub struct SharedContext {
    /// The scale everything was built at.
    pub scale: Scale,
    /// The corpus.
    pub corpus: Corpus,
    /// Offline configuration the evaluations/model used.
    pub offline_cfg: OfflineConfig,
    /// Evaluations of the offline training traces.
    pub train_evals: Vec<EvaluatedTrace>,
    /// Evaluations of the offline held-out traces.
    pub test_evals: Vec<EvaluatedTrace>,
    /// Evaluations of the online test traces (for hindsight-best grouping).
    pub online_evals: Vec<EvaluatedTrace>,
    /// The trained Darwin model.
    pub model: Arc<DarwinModel>,
}

impl SharedContext {
    /// Offline configuration used by the standard experiments.
    pub fn offline_config(scale: &Scale, train_all_pairs: bool) -> OfflineConfig {
        OfflineConfig {
            grid: ExpertGrid::paper_grid(),
            hoc_bytes: scale.hoc_bytes(),
            theta_percent: 1.0,
            n_clusters: 0,
            train_all_pairs,
            nn_train: TrainConfig { epochs: 250, ..TrainConfig::default() },
            // Train the feature pipeline on exactly the warm-up-sized view
            // the online lookup will have.
            feature_prefix_requests: scale.online_config().warmup_requests,
            ..OfflineConfig::default()
        }
    }

    /// Builds the full context (the expensive step of `experiments all`).
    pub fn build(scale: Scale, train_all_pairs: bool) -> Self {
        Self::build_with_cache(scale, train_all_pairs, None)
    }

    /// Like [`SharedContext::build`], optionally reusing cached evaluations
    /// from `cache_dir` (the corpus itself regenerates deterministically, so
    /// only the expensive expert evaluations are persisted). The cache is
    /// keyed by scale factor and crate version and ignored on any mismatch.
    pub fn build_with_cache(
        scale: Scale,
        train_all_pairs: bool,
        cache_dir: Option<&std::path::Path>,
    ) -> Self {
        let corpus = Corpus::build(&scale, 11, 2);
        let offline_cfg = Self::offline_config(&scale, train_all_pairs);
        let trainer = OfflineTrainer::new(offline_cfg.clone());

        let cache_path = cache_dir.map(|d| {
            d.join(format!("ctx-cache-v{}-scale{}.json", env!("CARGO_PKG_VERSION"), scale.factor()))
        });
        let cached: Option<CachedEvals> = cache_path
            .as_ref()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .and_then(|s| serde_json::from_str(&s).ok())
            .filter(|c: &CachedEvals| {
                c.grid_len == offline_cfg.grid.len()
                    && c.train.len() == corpus.offline_train.len()
                    && c.test.len() == corpus.offline_test.len()
                    && c.online.len() == corpus.online_test.len()
            });

        let (train_evals, test_evals, online_evals) = match cached {
            Some(c) => {
                eprintln!("[context] reusing cached evaluations");
                (c.train, c.test, c.online)
            }
            None => {
                eprintln!(
                    "[context] evaluating {} offline train traces x {} experts ...",
                    corpus.offline_train.len(),
                    offline_cfg.grid.len()
                );
                let train = trainer.evaluate_corpus(&corpus.offline_train);
                eprintln!("[context] evaluating {} offline test traces ...", corpus.offline_test.len());
                let test = trainer.evaluate_corpus(&corpus.offline_test);
                eprintln!("[context] evaluating {} online test traces ...", corpus.online_test.len());
                let online = trainer.evaluate_corpus(&corpus.online_test);
                if let Some(p) = &cache_path {
                    let payload = CachedEvals {
                        grid_len: offline_cfg.grid.len(),
                        train: train.clone(),
                        test: test.clone(),
                        online: online.clone(),
                    };
                    let _ = std::fs::create_dir_all(p.parent().unwrap_or(std::path::Path::new(".")));
                    if let Ok(json) = serde_json::to_string(&payload) {
                        let _ = std::fs::write(p, json);
                    }
                }
                (train, test, online)
            }
        };

        eprintln!("[context] training model (clusters + predictors) ...");
        let model = Arc::new(trainer.train_from_evaluations(&train_evals));
        Self { scale, corpus, offline_cfg, train_evals, test_evals, online_evals, model }
    }

    /// The Fig 4 "ensemble set": group online traces by their hindsight-best
    /// static expert and pick the first of each group.
    pub fn ensemble_indices(&self) -> Vec<usize> {
        let mut seen_best = Vec::new();
        let mut picks = Vec::new();
        for (i, ev) in self.online_evals.iter().enumerate() {
            let best = ev.best_expert();
            if !seen_best.contains(&best) {
                seen_best.push(best);
                picks.push(i);
            }
        }
        picks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shapes() {
        let scale = Scale::new(1);
        let c = Corpus::build(&scale, 3, 2);
        assert_eq!(c.ratios.len(), 3);
        assert_eq!(c.offline_train.len(), 6);
        assert_eq!(c.offline_test.len(), 3);
        assert_eq!(c.online_test.len(), 3);
        assert_eq!(c.online_test[0].len(), scale.online_trace_len());
        // Sweep endpoints are the pure classes.
        assert!((c.ratios[0] - 1.0).abs() < 1e-12);
        assert!(c.ratios[2].abs() < 1e-12);
    }
}
