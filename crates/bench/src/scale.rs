//! Experiment scaling.
//!
//! All experiments are parameterized by a single scale factor so the same
//! harness runs as a quick laptop check (`Scale::new(1)`, the default) or
//! closer to the paper's sizes (`--scale 6` ⇒ 1.2 M-request traces and a
//! ~100 MB HOC). Lengths and capacities scale together so cache dynamics
//! (evictions per request, rounds per cache turnover, warm-up fractions)
//! stay comparable across scales.

use darwin::OnlineConfig;
use darwin_cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// A scale factor and the derived experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    factor: usize,
}

impl Scale {
    /// Scale `factor ≥ 1`; 1 is the laptop default.
    pub fn new(factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be ≥ 1");
        Self { factor }
    }

    /// The raw factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Length of each offline training trace, in requests. Offline and
    /// online lengths are kept equal: at sub-steady-state trace lengths the
    /// optimal (f, s) depends on the horizon, so a length mismatch would
    /// train cluster sets for a different regime than the one deployed
    /// (the paper's 10 M/100 M traces are both past that regime).
    pub fn offline_trace_len(&self) -> usize {
        200_000 * self.factor
    }

    /// Length of each online test trace, in requests.
    pub fn online_trace_len(&self) -> usize {
        200_000 * self.factor
    }

    /// HOC capacity in bytes. The paper pairs a 100 MB HOC with 0.5 M-request
    /// bandit rounds — long enough for the cache state to turn over within a
    /// round (§4.2). Shrinking the traces without shrinking the cache would
    /// leave rounds dominated by inherited cache state, so capacity scales
    /// with the trace length to preserve the rounds-per-turnover ratio.
    pub fn hoc_bytes(&self) -> u64 {
        16 * 1024 * 1024 * self.factor as u64
    }

    /// DC capacity in bytes (the paper's "10 GB", scaled at the same 100:1
    /// HOC:DC ratio).
    pub fn dc_bytes(&self) -> u64 {
        self.hoc_bytes() * 100
    }

    /// Cache configuration at this scale.
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            hoc_bytes: self.hoc_bytes(),
            dc_bytes: self.dc_bytes(),
            ..CacheConfig::paper_default()
        }
    }

    /// Cache configuration with capacities multiplied by `m` (the 200 MB /
    /// 500 MB studies use m = 2, 5).
    pub fn cache_config_scaled(&self, m: u64) -> CacheConfig {
        let base = self.cache_config();
        CacheConfig { hoc_bytes: base.hoc_bytes * m, dc_bytes: base.dc_bytes * m, ..base }
    }

    /// Online-phase configuration preserving the paper's epoch proportions
    /// (warm-up = 3 % of the epoch, round = 0.5 %).
    pub fn online_config(&self) -> OnlineConfig {
        let epoch = self.online_trace_len();
        OnlineConfig {
            epoch_requests: epoch,
            warmup_requests: (epoch * 3) / 100,
            round_requests: epoch / 100,
            ..OnlineConfig::default()
        }
    }

    /// Window length for the Percentile baseline (paper: 100 K on 100 M).
    pub fn percentile_window(&self) -> usize {
        (self.online_trace_len() / 20).max(1_000)
    }

    /// Epoch length for the HillClimbing baseline (paper: 0.5 M on 100 M).
    pub fn hillclimb_window(&self) -> usize {
        (self.online_trace_len() / 50).max(500)
    }

    /// Re-tuning window for AdaptSize.
    pub fn adaptsize_window(&self) -> usize {
        (self.online_trace_len() / 20).max(1_000)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_follow_paper() {
        let s = Scale::new(1);
        let oc = s.online_config();
        // Warm-up ≈ 3 % of epoch; round ≈ 0.5 %.
        let warm_frac = oc.warmup_requests as f64 / oc.epoch_requests as f64;
        let round_frac = oc.round_requests as f64 / oc.epoch_requests as f64;
        assert!((warm_frac - 0.03).abs() < 0.001);
        assert!((round_frac - 0.01).abs() < 0.001);
        // HOC:DC ratio 1:100 as in 100 MB:10 GB.
        assert_eq!(s.dc_bytes() / s.hoc_bytes(), 100);
    }

    #[test]
    fn factor_scales_trace_lengths_not_capacity() {
        let a = Scale::new(1);
        let b = Scale::new(4);
        assert_eq!(b.online_trace_len(), 4 * a.online_trace_len());
        assert_eq!(b.hoc_bytes(), 4 * a.hoc_bytes());
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_factor_rejected() {
        Scale::new(0);
    }
}
