//! Integration tests driving the `darwin-cli` binary end to end through its
//! public command-line surface.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_darwin-cli"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("darwin-cli-test-{name}"))
}

#[test]
fn generate_stats_simulate_train_run_pipeline() {
    let t1 = tmp("t1.csv");
    let t2 = tmp("t2.csv");
    let model = tmp("model.json");

    // generate two small traces
    for (path, extra) in [(&t1, ["--mix", "0.5"]), (&t2, ["--class", "download"])] {
        let out = cli()
            .args(["generate", "--requests", "20000", "--seed", "3", "--out"])
            .arg(path)
            .args(extra)
            .output()
            .expect("run generate");
        assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    }

    // stats
    let out = cli().args(["stats", "--trace"]).arg(&t1).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("requests:"), "{text}");
    assert!(text.contains("20000"), "{text}");

    // hrc
    let out = cli().args(["hrc", "--trace"]).arg(&t1).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cache_bytes"));

    // simulate
    let out = cli()
        .args(["simulate", "--hoc-mb", "4", "--f", "2", "--s-kb", "100", "--trace"])
        .arg(&t1)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("hoc ohr:"));

    // train on both traces
    let traces_arg = format!("{},{}", t1.display(), t2.display());
    let out = cli()
        .args(["train", "--traces", &traces_arg, "--hoc-mb", "4", "--out"])
        .arg(&model)
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    // run the model on a trace
    let out = cli()
        .args(["run", "--hoc-mb", "4", "--model"])
        .arg(&model)
        .args(["--trace"])
        .arg(&t2)
        .output()
        .unwrap();
    assert!(out.status.success(), "run failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hoc ohr:"), "{text}");
    assert!(text.contains("epoch"), "{text}");

    for p in [t1, t2, model] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_required_flag_fails() {
    let out = cli().args(["stats"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));
}

#[test]
fn malformed_trace_file_is_reported() {
    let bad = tmp("bad.csv");
    std::fs::write(&bad, "definitely,not\nvalid").unwrap();
    let out = cli().args(["stats", "--trace"]).arg(&bad).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed to read trace"));
    let _ = std::fs::remove_file(bad);
}
