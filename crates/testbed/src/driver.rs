//! Pluggable admission control for the testbed proxy.

use darwin::online::OnlineController;
use darwin::{DarwinModel, OnlineConfig};
use darwin_cache::{CacheMetrics, ThresholdPolicy};
use darwin_trace::Request;
use std::sync::Arc;

/// Decides the proxy's HOC admission policy over time. Called once per
/// processed request with the proxy's cumulative metrics.
pub trait AdmissionDriver {
    /// Policy to install before the first request.
    fn initial_policy(&mut self) -> ThresholdPolicy;
    /// Observes a processed request; returns a new policy to install, if any.
    fn observe(&mut self, req: &Request, cumulative: &CacheMetrics) -> Option<ThresholdPolicy>;
    /// Label for reports.
    fn label(&self) -> String;
    /// Serializes the driver's dynamic state for a warm-restart checkpoint.
    /// `None` (the default) marks the driver as non-checkpointable; a
    /// checkpointing fleet then skips the snapshot entirely rather than
    /// persist a cache state it could not pair with driver state.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }
    /// Restores state written by [`AdmissionDriver::save_state`] into a
    /// freshly built driver of the same configuration. Returns `false` when
    /// the bytes are rejected (the caller must fall back to a cold start).
    fn load_state(&mut self, _bytes: &[u8]) -> bool {
        false
    }
    /// Takes the control-plane decisions (expert switches, drift
    /// detections) buffered since the last drain, for the serving layer's
    /// event journal. Drivers without a controller have none.
    fn drain_events(&mut self) -> Vec<darwin::ControlEvent> {
        Vec::new()
    }
}

/// A fixed expert (the paper's static baselines).
#[derive(Debug, Clone)]
pub struct StaticDriver {
    policy: ThresholdPolicy,
}

impl StaticDriver {
    /// Driver that always deploys `policy`.
    pub fn new(policy: ThresholdPolicy) -> Self {
        Self { policy }
    }
}

impl AdmissionDriver for StaticDriver {
    fn initial_policy(&mut self) -> ThresholdPolicy {
        self.policy
    }
    fn observe(&mut self, _req: &Request, _m: &CacheMetrics) -> Option<ThresholdPolicy> {
        None
    }
    fn label(&self) -> String {
        use darwin_cache::AdmissionPolicy;
        let p = self.policy;
        p.label()
    }
    fn save_state(&self) -> Option<Vec<u8>> {
        // Stateless: an empty payload suffices, but the driver *is*
        // checkpointable (the fleet still snapshots the cache).
        Some(Vec::new())
    }
    fn load_state(&mut self, bytes: &[u8]) -> bool {
        bytes.is_empty()
    }
}

/// The full Darwin online pipeline driving the proxy (what §5's prototype
/// does with its background learning thread — here the learning work is
/// simulated as off-critical-path, matching the paper's observation that
/// "the learning logic is not in the critical path of cache processing").
pub struct DarwinDriver {
    controller: OnlineController,
}

impl DarwinDriver {
    /// Driver around a trained model.
    pub fn new(model: Arc<DarwinModel>, cfg: OnlineConfig) -> Self {
        Self { controller: OnlineController::new(model, cfg) }
    }

    /// Access to the controller (switch history, epoch summaries).
    pub fn controller(&self) -> &OnlineController {
        &self.controller
    }

    /// Consumes the driver, returning its controller. A sharded fleet hands
    /// the per-shard drivers back when it shuts down; this is how callers
    /// recover each shard's switch history and epoch summaries for reporting
    /// and for the fleet-vs-sequential determinism check.
    pub fn into_controller(self) -> OnlineController {
        self.controller
    }
}

impl AdmissionDriver for DarwinDriver {
    fn initial_policy(&mut self) -> ThresholdPolicy {
        self.controller.current_expert().policy
    }
    fn observe(&mut self, req: &Request, cumulative: &CacheMetrics) -> Option<ThresholdPolicy> {
        self.controller.observe(req, cumulative).map(|e| e.policy)
    }
    fn label(&self) -> String {
        "darwin".into()
    }
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.controller.save_state())
    }
    fn load_state(&mut self, bytes: &[u8]) -> bool {
        self.controller.restore_state(bytes).is_ok()
    }
    fn drain_events(&mut self) -> Vec<darwin::ControlEvent> {
        self.controller.drain_control_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_driver_never_switches() {
        let mut d = StaticDriver::new(ThresholdPolicy::new(2, 2048));
        assert_eq!(d.initial_policy(), ThresholdPolicy::new(2, 2048));
        let m = CacheMetrics::default();
        assert!(d.observe(&Request::new(1, 1, 0), &m).is_none());
        assert_eq!(d.label(), "f2s2");
    }
}
