//! The closed-loop discrete-event testbed.
//!
//! `concurrency` clients replay a shared request stream as fast as the
//! system allows (ab/wrk-style load generation, as in the paper's throughput
//! experiments). The proxy serializes HOC operations through a contended
//! critical section; misses traverse the origin link. Event ordering is
//! managed with a binary heap keyed on simulated microseconds.

use crate::driver::AdmissionDriver;
use crate::latency::LatencyStats;
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer, RequestOutcome};
use darwin_trace::Trace;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Testbed parameters (defaults follow §6's testbed setup).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Number of concurrent closed-loop clients.
    pub concurrency: usize,
    /// One-way client↔proxy delay in µs (paper injects 10 ms).
    pub client_proxy_owd_us: u64,
    /// One-way proxy↔origin delay in µs (paper injects 100 ms).
    pub proxy_origin_owd_us: u64,
    /// Link bandwidth in Gbps (paper: 20 Gbps links).
    pub link_gbps: f64,
    /// Base HOC critical-section service time per request, µs.
    pub hoc_service_base_us: f64,
    /// Additional critical-section time per concurrent client, µs (lock and
    /// cache-line contention; creates the Fig 7b throughput sweet spot).
    pub hoc_contention_us_per_client: f64,
    /// Disk seek time for a DC read, µs.
    pub disk_seek_us: u64,
    /// Disk read bandwidth, MB/s.
    pub disk_mbps: f64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            concurrency: 16,
            client_proxy_owd_us: 10_000,
            proxy_origin_owd_us: 100_000,
            link_gbps: 20.0,
            hoc_service_base_us: 4.0,
            hoc_contention_us_per_client: 0.03,
            disk_seek_us: 100,
            disk_mbps: 500.0,
        }
    }
}

impl TestbedConfig {
    /// Transfer time of `bytes` over the client/origin link, in µs.
    fn link_us(&self, bytes: u64) -> u64 {
        ((bytes as f64 * 8.0) / (self.link_gbps * 1e3)).ceil() as u64
    }

    /// Disk read time for `bytes`, in µs.
    fn disk_us(&self, bytes: u64) -> u64 {
        self.disk_seek_us + ((bytes as f64) / self.disk_mbps).ceil() as u64
    }

    /// Effective HOC critical-section time at the configured concurrency.
    fn hoc_service_us(&self) -> f64 {
        self.hoc_service_base_us + self.hoc_contention_us_per_client * self.concurrency as f64
    }
}

/// What a testbed run produced.
#[derive(Debug, Clone)]
pub struct TestbedReport {
    /// The proxy's cache metrics over the run.
    pub cache: CacheMetrics,
    /// First-byte latencies.
    pub latency: LatencyStats,
    /// Wall-clock makespan of the run, µs.
    pub makespan_us: u64,
    /// Application-level goodput in Gbps (bytes delivered / makespan).
    pub goodput_gbps: f64,
    /// Requests completed.
    pub completed: u64,
    /// Fraction of the makespan the HOC critical section was busy (the §6.4
    /// CPU-utilization proxy).
    pub hoc_busy_fraction: f64,
    /// Label of the driver that ran.
    pub driver: String,
}

/// The testbed simulator.
pub struct Testbed {
    cfg: TestbedConfig,
}

impl Testbed {
    /// Testbed with the given parameters.
    pub fn new(cfg: TestbedConfig) -> Self {
        assert!(cfg.concurrency > 0, "need at least one client");
        assert!(cfg.link_gbps > 0.0, "link bandwidth must be positive");
        Self { cfg }
    }

    /// Replays `trace` through a fresh proxy under `driver`'s admission
    /// control.
    pub fn run<D: AdmissionDriver>(
        &self,
        trace: &Trace,
        cache: &CacheConfig,
        driver: &mut D,
    ) -> TestbedReport {
        let cfg = &self.cfg;
        let mut server = CacheServer::new(cache.clone());
        server.set_policy(driver.initial_policy());

        let mut latency = LatencyStats::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new(); // (ready_at, client)
        for c in 0..cfg.concurrency as u64 {
            heap.push(Reverse((0, c)));
        }
        let mut next_req = 0usize;
        let requests = trace.requests();
        let mut lock_free_at = 0u64;
        let mut lock_busy_us = 0u64;
        // Shared-resource FIFO horizons: the disk serves DC reads at its
        // aggregate bandwidth, and the proxy-origin link carries misses at
        // its line rate. These are what saturate under load — and what a
        // higher HOC hit rate offloads (the Fig 7b effect).
        let mut disk_free_at = 0u64;
        let mut origin_free_at = 0u64;
        let mut bytes_delivered = 0u64;
        let mut completed = 0u64;
        let mut makespan = 0u64;
        let hoc_service = cfg.hoc_service_us().ceil() as u64;

        while let Some(Reverse((ready_at, client))) = heap.pop() {
            if next_req >= requests.len() {
                makespan = makespan.max(ready_at);
                continue;
            }
            let req = &requests[next_req];
            next_req += 1;

            // Client → proxy.
            let arrive = ready_at + cfg.client_proxy_owd_us;
            // HOC critical section (FIFO lock).
            let start = arrive.max(lock_free_at);
            lock_free_at = start + hoc_service;
            lock_busy_us += hoc_service;
            let outcome = server.process(req);
            if let Some(policy) = driver.observe(req, &server.metrics()) {
                server.set_policy(policy);
            }

            // Where the first byte comes from. DC reads queue on the shared
            // disk; origin fetches queue on the shared origin link.
            let first_byte_at_proxy = match outcome {
                RequestOutcome::HocHit => lock_free_at,
                RequestOutcome::DcHit => {
                    let start = lock_free_at.max(disk_free_at);
                    disk_free_at = start + cfg.disk_us(req.size);
                    disk_free_at
                }
                RequestOutcome::OriginFetch => {
                    let start = lock_free_at.max(origin_free_at);
                    origin_free_at = start + cfg.link_us(req.size);
                    origin_free_at + 2 * cfg.proxy_origin_owd_us
                }
            };
            let first_byte_at_client = first_byte_at_proxy + cfg.client_proxy_owd_us;
            latency.record(first_byte_at_client - ready_at);

            let done = first_byte_at_client + cfg.link_us(req.size);
            bytes_delivered += req.size;
            completed += 1;
            makespan = makespan.max(done);
            heap.push(Reverse((done, client)));
        }

        let goodput_gbps =
            if makespan == 0 { 0.0 } else { (bytes_delivered as f64 * 8.0) / (makespan as f64 * 1e3) };
        TestbedReport {
            cache: server.metrics(),
            latency,
            makespan_us: makespan,
            goodput_gbps,
            completed,
            hoc_busy_fraction: if makespan == 0 { 0.0 } else { lock_busy_us as f64 / makespan as f64 },
            driver: driver.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::StaticDriver;
    use darwin_cache::ThresholdPolicy;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn trace(n: usize, seed: u64) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
    }

    fn run(concurrency: usize, policy: ThresholdPolicy, n: usize) -> TestbedReport {
        let tb = Testbed::new(TestbedConfig { concurrency, ..TestbedConfig::default() });
        let mut d = StaticDriver::new(policy);
        tb.run(&trace(n, 7), &CacheConfig::small_test(), &mut d)
    }

    #[test]
    fn completes_all_requests() {
        let r = run(8, ThresholdPolicy::new(1, 100 * 1024), 5_000);
        assert_eq!(r.completed, 5_000);
        assert_eq!(r.cache.requests, 5_000);
        assert!(r.makespan_us > 0);
        assert_eq!(r.latency.len(), 5_000);
    }

    #[test]
    fn hits_are_faster_than_misses() {
        let r = run(1, ThresholdPolicy::new(1, 1024 * 1024), 3_000);
        let mut lat = r.latency.clone();
        // Fastest possible: HOC hit = 2 × 10 ms + lock ≈ 20 ms.
        // Slowest: origin = 2 × 10 ms + 2 × 100 ms + transfer ≥ 220 ms.
        assert!(lat.percentile(1.0) < 25_000, "fast path {}", lat.percentile(1.0));
        assert!(lat.percentile(99.9) > 200_000, "slow path {}", lat.percentile(99.9));
    }

    #[test]
    fn higher_concurrency_raises_throughput_at_low_levels() {
        let r1 = run(1, ThresholdPolicy::new(1, 100 * 1024), 4_000);
        let r16 = run(16, ThresholdPolicy::new(1, 100 * 1024), 4_000);
        assert!(
            r16.goodput_gbps > r1.goodput_gbps,
            "16 clients {} ≤ 1 client {}",
            r16.goodput_gbps,
            r1.goodput_gbps
        );
    }

    #[test]
    fn extreme_concurrency_hits_contention() {
        // The contention model must eventually flatten/penalize throughput
        // per added client: goodput at 4096 clients must be less than
        // proportionally higher than at 256.
        let r256 = run(256, ThresholdPolicy::new(1, 100 * 1024), 4_000);
        let r4096 = run(4096, ThresholdPolicy::new(1, 100 * 1024), 4_000);
        assert!(
            r4096.goodput_gbps < r256.goodput_gbps * 16.0,
            "no contention visible: {} vs {}",
            r4096.goodput_gbps,
            r256.goodput_gbps
        );
    }

    #[test]
    fn better_admission_gives_better_latency() {
        // A permissive expert (high hit rate on image traffic) must beat a
        // never-admit expert on mean first-byte latency.
        let good = run(8, ThresholdPolicy::new(1, 1024 * 1024), 6_000);
        let bad = run(8, ThresholdPolicy::new(200, 1), 6_000);
        assert!(good.cache.hoc_ohr() > bad.cache.hoc_ohr());
        assert!(good.latency.clone().mean() < bad.latency.clone().mean());
    }

    #[test]
    fn busy_fraction_is_sane() {
        let r = run(32, ThresholdPolicy::new(1, 100 * 1024), 3_000);
        assert!((0.0..=1.0).contains(&r.hoc_busy_fraction));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::driver::StaticDriver;
    use darwin_cache::ThresholdPolicy;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// For any concurrency and expert, the run completes every request,
        /// the makespan bounds every latency sample, and goodput is finite.
        #[test]
        fn testbed_invariants(concurrency in 1usize..64, f in 0u32..8, s_kb in 1u64..2000) {
            let trace = TraceGenerator::new(
                MixSpec::single(TrafficClass::image()), 11).generate(2_000);
            let tb = Testbed::new(TestbedConfig { concurrency, ..TestbedConfig::default() });
            let mut d = StaticDriver::new(ThresholdPolicy::new(f, s_kb * 1024));
            let r = tb.run(&trace, &CacheConfig::small_test(), &mut d);
            prop_assert_eq!(r.completed, 2_000);
            prop_assert!(r.goodput_gbps.is_finite() && r.goodput_gbps > 0.0);
            let mut lat = r.latency.clone();
            prop_assert!(lat.percentile(100.0) <= r.makespan_us);
            prop_assert!((0.0..=1.0).contains(&r.hoc_busy_fraction));
        }
    }
}
