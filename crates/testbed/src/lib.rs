#![warn(missing_docs)]

//! # darwin-testbed
//!
//! A discrete-event simulation of the paper's CloudLab/ATS prototype testbed
//! (§5, §6.4): closed-loop clients → proxy (the CDN cache server running
//! Darwin or a static expert) → origin.
//!
//! The paper's testbed: client, proxy and origin nodes with 20 Gbps links,
//! an injected 10 ms client↔proxy and 100 ms proxy↔origin latency, 100 MB
//! RAM cache. The simulation reproduces the same request path:
//!
//! * **HOC hit** — served after a pass through the HOC critical section
//!   (lock); first byte after one client↔proxy round trip.
//! * **DC hit** — adds a disk read (seek + size/disk bandwidth).
//! * **Miss** — adds a proxy↔origin round trip and the origin transfer.
//!
//! Lock contention is modeled as a single FIFO resource whose per-operation
//! service time grows with the number of concurrent clients (cache-line and
//! lock-queue overheads) — this produces the paper's interior throughput
//! sweet spot ("the sweet spot for throughput vs synchronization overhead is
//! around 200" concurrent requests, Fig 7b).
//!
//! The admission policy is pluggable through [`AdmissionDriver`], with
//! implementations for static experts and the full Darwin online controller,
//! so Fig 4c / 7a / 7b compare exactly the code paths the paper compares.

pub mod driver;
pub mod latency;
pub mod sim;

pub use darwin::ControlEvent;
pub use driver::{AdmissionDriver, DarwinDriver, StaticDriver};
pub use latency::LatencyStats;
pub use sim::{Testbed, TestbedConfig, TestbedReport};
