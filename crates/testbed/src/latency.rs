//! First-byte-latency aggregation (Fig 7a's CDF).

use serde::{Deserialize, Serialize};

/// Collected latency samples with percentile/CDF accessors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples_us: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample in microseconds.
    pub fn record(&mut self, us: u64) {
        self.samples_us.push(us);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_us.sort_unstable();
            self.sorted = true;
        }
    }

    /// The p-th percentile (0–100) in microseconds; 0 when empty.
    pub fn percentile(&mut self, p: f64) -> u64 {
        if self.samples_us.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let idx = ((p / 100.0) * (self.samples_us.len() - 1) as f64).round() as usize;
        self.samples_us[idx.min(self.samples_us.len() - 1)]
    }

    /// Mean latency in microseconds.
    pub fn mean(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<u64>() as f64 / self.samples_us.len() as f64
    }

    /// `(latency_us, cumulative_fraction)` points of the empirical CDF,
    /// down-sampled to at most `points` entries (for plotting Fig 7a).
    pub fn cdf(&mut self, points: usize) -> Vec<(u64, f64)> {
        if self.samples_us.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples_us.len();
        let step = (n / points).max(1);
        let mut out = Vec::with_capacity(points + 1);
        let mut i = step - 1;
        while i < n {
            out.push((self.samples_us[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(_, f)| f < 1.0).unwrap_or(false) {
            out.push((self.samples_us[n - 1], 1.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut s = LatencyStats::new();
        for i in 1..=100 {
            s.record(i);
        }
        assert_eq!(s.percentile(0.0), 1);
        // idx = round(0.5 · 99) = 50 ⇒ the 51st sample.
        assert_eq!(s.percentile(50.0), 51);
        assert_eq!(s.percentile(100.0), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.cdf(10).is_empty());
    }

    #[test]
    fn cdf_ends_at_one() {
        let mut s = LatencyStats::new();
        for i in 0..1000 {
            s.record(i * 3 + 7);
        }
        let cdf = s.cdf(20);
        assert!(!cdf.is_empty());
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // Monotone in both coordinates.
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }
}
