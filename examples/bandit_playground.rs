//! Bandit playground: the paper's theoretical story in isolation.
//!
//! Track-and-Stop with Side Information identifies the best arm in a number
//! of rounds that does not grow with the number of arms K (Theorem 2), while
//! classical Track-and-Stop scales linearly in K. This example runs both on
//! synthetic Gaussian environments and prints the scaling table.
//!
//! ```text
//! cargo run --release --example bandit_playground
//! ```

use darwin_bandit::{ClassicalTrackAndStop, GaussianEnv, SideInfo, TasConfig, TrackAndStopSideInfo};

fn main() {
    let cfg = TasConfig { stability_rounds: None, max_rounds: 100_000, ..TasConfig::default() };
    let seeds = 10u64;

    println!("best-arm identification: mean rounds over {seeds} seeds (delta = 0.05)\n");
    println!("{:>4} {:>22} {:>22} {:>10}", "K", "with side info", "classical feedback", "ratio");

    for k in [2usize, 4, 8, 16, 32] {
        // One clearly-best arm; challengers staggered 0.08–0.12 below.
        let mu: Vec<f64> =
            (0..k).map(|i| if i == 0 { 0.60 } else { 0.50 - 0.01 * (i % 3) as f64 }).collect();
        let sigma = SideInfo::two_level(k, 0.05, 0.08);

        let mut si_total = 0usize;
        let mut si_errors = 0usize;
        let mut cl_total = 0usize;
        for seed in 0..seeds {
            let mut env = GaussianEnv::new(mu.clone(), sigma.clone(), seed);
            let (arm, rounds, _) =
                TrackAndStopSideInfo::new(sigma.clone(), 0.05, cfg).run(|a| env.pull(a));
            si_total += rounds;
            if arm != 0 {
                si_errors += 1;
            }

            let mut env2 = GaussianEnv::new(mu.clone(), sigma.clone(), 1000 + seed);
            let (_, rounds, _) =
                ClassicalTrackAndStop::homoscedastic(k, 0.05, 0.05, cfg).run(|a| env2.pull(a)[a]);
            cl_total += rounds;
        }
        let si = si_total as f64 / seeds as f64;
        let cl = cl_total as f64 / seeds as f64;
        println!("{k:>4} {si:>22.1} {cl:>22.1} {:>10.1}x", cl / si);
        assert_eq!(si_errors, 0, "side-info TaS misidentified the best arm");
    }

    println!(
        "\nThe side-information column stays roughly flat in K — every round\n\
         yields a (fictitious) sample for every arm — while classical rounds\n\
         grow with K, as Theorem 2's comparison predicts."
    );
}
