//! Quickstart: train Darwin offline on a small corpus, then run it online on
//! a traffic mix it has never seen, and compare against a static expert.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use darwin::prelude::*;
use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
use std::sync::Arc;

fn main() {
    // ---------------------------------------------------------------- corpus
    // Historical traces: Image/Download mixes at several ratios (what a CDN
    // would collect from production logs).
    println!("generating offline corpus ...");
    let corpus: Vec<_> = (0..6)
        .map(|i| {
            let image_share = i as f64 / 5.0;
            let mix = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), image_share);
            TraceGenerator::new(mix, 100 + i as u64).generate(60_000)
        })
        .collect();

    // --------------------------------------------------------------- offline
    // Train the full pipeline: evaluate the 36-expert grid on every trace,
    // cluster, associate best-expert sets, and fit cross-expert predictors.
    println!("training Darwin offline (36 experts x {} traces) ...", corpus.len());
    let offline = OfflineConfig {
        hoc_bytes: 16 * 1024 * 1024,
        feature_prefix_requests: 2_000,
        ..OfflineConfig::default()
    };
    let model = Arc::new(OfflineTrainer::new(offline).train(&corpus));
    println!(
        "model: {} clusters, expert sets of sizes {:?}",
        model.num_clusters(),
        (0..model.num_clusters()).map(|c| model.expert_set(c).len()).collect::<Vec<_>>()
    );

    // ---------------------------------------------------------------- online
    // A held-out 30:70 mix the model never saw.
    let test = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.3),
        999,
    )
    .generate(60_000);

    let online = OnlineConfig {
        epoch_requests: 60_000,
        warmup_requests: 2_000,
        round_requests: 600,
        ..OnlineConfig::default()
    };
    let cache = CacheConfig {
        hoc_bytes: 16 * 1024 * 1024,
        dc_bytes: 1024 * 1024 * 1024,
        ..CacheConfig::paper_default()
    };
    println!("running Darwin online on a held-out mix ...");
    let report = run_darwin(&model, &online, &test, &cache);
    println!(
        "darwin: OHR = {:.4}, {} expert switches, identified in {} bandit rounds",
        report.metrics.hoc_ohr(),
        report.switches.len(),
        report.epochs.first().map(|e| e.identify_rounds).unwrap_or(0),
    );

    // ------------------------------------------------------------- baseline
    let static_expert = Expert::new(2, 100);
    let m = darwin::run_static(static_expert, &test, &cache);
    println!("static {}: OHR = {:.4}", static_expert.label(), m.hoc_ohr());
    println!(
        "darwin vs static: {:+.2}%",
        (report.metrics.hoc_ohr() - m.hoc_ohr()) / m.hoc_ohr() * 100.0
    );
}
