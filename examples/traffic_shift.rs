//! Traffic-shift scenario: the paper's core motivation (§2.1).
//!
//! A CDN load balancer abruptly changes the traffic-class mix a server sees
//! (e.g. an iOS release floods a web server with software downloads). This
//! example concatenates three workload phases with very different optimal
//! experts and shows Darwin re-identifying the best expert each epoch, while
//! any static expert is wrong for at least one phase.
//!
//! ```text
//! cargo run --release --example traffic_shift
//! ```

use darwin::prelude::*;
use darwin_trace::{concat_traces, MixSpec, TraceGenerator, TrafficClass};
use std::sync::Arc;

fn main() {
    let cache = CacheConfig {
        hoc_bytes: 16 * 1024 * 1024,
        dc_bytes: 1024 * 1024 * 1024,
        ..CacheConfig::paper_default()
    };

    // Offline corpus spanning the mixes the server might see.
    println!("training Darwin offline ...");
    let corpus: Vec<_> = (0..8)
        .map(|i| {
            let mix =
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 7.0);
            TraceGenerator::new(mix, 10 + i as u64).generate(50_000)
        })
        .collect();
    let offline = OfflineConfig {
        hoc_bytes: cache.hoc_bytes,
        feature_prefix_requests: 1_500,
        ..OfflineConfig::default()
    };
    let model = Arc::new(OfflineTrainer::new(offline).train(&corpus));

    // Three phases: image-heavy → download-heavy → balanced. Each phase is
    // one epoch long, so Darwin re-runs feature estimation + identification
    // at each shift.
    let phase_len = 50_000;
    let phases =
        [("image-heavy (90:10)", 0.9), ("download-heavy (10:90)", 0.1), ("balanced (50:50)", 0.5)];
    let parts: Vec<_> = phases
        .iter()
        .enumerate()
        .map(|(i, &(_, share))| {
            let mix = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), share);
            TraceGenerator::new(mix, 500 + i as u64).generate(phase_len)
        })
        .collect();
    let workload = concat_traces(&parts);

    let online = OnlineConfig {
        epoch_requests: phase_len,
        warmup_requests: 1_500,
        round_requests: 500,
        ..OnlineConfig::default()
    };
    println!("running Darwin across three traffic phases ...");
    let report = run_darwin(&model, &online, &workload, &cache);

    println!("\nphase shifts and Darwin's reactions:");
    for (i, (ep, (name, _))) in report.epochs.iter().zip(&phases).enumerate() {
        println!(
            "  phase {} {:24} -> cluster {}, {} candidates, {} rounds, deployed {}",
            i + 1,
            name,
            ep.cluster,
            ep.set_size,
            ep.identify_rounds,
            model.grid().get(ep.chosen_expert).label(),
        );
    }
    println!("\ndarwin overall OHR: {:.4}", report.metrics.hoc_ohr());

    // Static experts: each phase's favourite fails elsewhere.
    for expert in [Expert::new(5, 20), Expert::new(2, 1000), Expert::new(3, 100)] {
        let m = darwin::run_static(expert, &workload, &cache);
        println!("static {:8} OHR: {:.4}", expert.label(), m.hoc_ohr());
    }
}
