//! Future-work demonstration (§7/§8): extending Darwin's learning paradigm
//! from *admission* experts to *eviction* experts.
//!
//! "While Darwin focuses on studying HOC admissions, we argue that our
//! approach can be flexibly extended to learn CDN eviction decisions with
//! multiple objectives; we leave a systematic exploration for future work."
//!
//! This example instantiates the offline half of that extension with the
//! machinery already in the workspace: experts are *(admission, eviction)*
//! pairs; traces are featurized and clustered exactly as in Darwin; each
//! cluster gets the eviction expert that maximizes the chosen objective on
//! its member traces; held-out traces then look up their cluster and deploy
//! its eviction choice.
//!
//! ```text
//! cargo run --release --example eviction_futurework
//! ```

use darwin_cache::{EvictionKind, HocSim, Objective, ThresholdPolicy};
use darwin_cluster::{KMeans, Normalizer};
use darwin_features::FeatureExtractor;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};

const HOC: u64 = 16 * 1024 * 1024;
const ADMISSION: ThresholdPolicy =
    ThresholdPolicy { freq_threshold: 2, size_threshold: 500 * 1024, max_recency_us: None };

fn eviction_experts() -> Vec<(&'static str, EvictionKind)> {
    vec![
        ("lru", EvictionKind::Lru),
        ("fifo", EvictionKind::Fifo),
        ("lfu", EvictionKind::Lfu),
        ("s2lru", EvictionKind::SegmentedLru { segments: 2 }),
        ("s4lru", EvictionKind::SegmentedLru { segments: 4 }),
    ]
}

fn evaluate(trace: &Trace) -> Vec<f64> {
    eviction_experts()
        .iter()
        .map(|&(_, kind)| {
            let mut sim = HocSim::new(HOC, kind, ADMISSION);
            Objective::HocOhr.reward(&sim.run_trace(trace))
        })
        .collect()
}

fn main() {
    // Offline corpus across the mix sweep.
    println!("evaluating {} eviction experts offline ...", eviction_experts().len());
    let corpus: Vec<Trace> = (0..8)
        .map(|i| {
            let mix =
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 7.0);
            TraceGenerator::new(mix, 3000 + i as u64).generate(60_000)
        })
        .collect();

    // Features + clustering (identical pipeline to admission-Darwin).
    let rows: Vec<Vec<f64>> =
        corpus.iter().map(|t| FeatureExtractor::extract(&t.slice(0, 2_000)).into_values()).collect();
    let norm = Normalizer::fit(&rows);
    let z: Vec<Vec<f64>> = rows.iter().map(|r| norm.transform(r)).collect();
    let km = KMeans::fit(&z, 3, 100, 7);

    // Per-cluster best eviction expert (mean reward over member traces).
    let names: Vec<&str> = eviction_experts().iter().map(|&(n, _)| n).collect();
    let mut sums = vec![vec![0.0; names.len()]; km.k()];
    let mut counts = vec![0usize; km.k()];
    for (zrow, trace) in z.iter().zip(&corpus) {
        let c = km.assign(zrow);
        counts[c] += 1;
        for (acc, r) in sums[c].iter_mut().zip(evaluate(trace)) {
            *acc += r;
        }
    }
    let mut cluster_choice = Vec::new();
    println!("\nper-cluster eviction selection:");
    for c in 0..km.k() {
        if counts[c] == 0 {
            cluster_choice.push(0);
            continue;
        }
        let best =
            (0..names.len()).max_by(|&a, &b| sums[c][a].partial_cmp(&sums[c][b]).unwrap()).unwrap();
        cluster_choice.push(best);
        let means: Vec<String> =
            sums[c].iter().map(|s| format!("{:.4}", s / counts[c] as f64)).collect();
        println!(
            "  cluster {c} ({} traces): best = {:6}  [{}]",
            counts[c],
            names[best],
            names.iter().zip(&means).map(|(n, m)| format!("{n}={m}")).collect::<Vec<_>>().join(" ")
        );
    }

    // Held-out deployment: cluster lookup → deploy the learned eviction.
    println!("\nheld-out deployment:");
    let mut learned_total = 0.0;
    let mut lru_total = 0.0;
    for (i, share) in [0.2, 0.5, 0.8].iter().enumerate() {
        let mix = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), *share);
        let test = TraceGenerator::new(mix, 4000 + i as u64).generate(60_000);
        let features = FeatureExtractor::extract(&test.slice(0, 2_000)).into_values();
        let c = km.assign(&norm.transform(&features));
        let choice = cluster_choice[c];
        let rewards = evaluate(&test);
        learned_total += rewards[choice];
        lru_total += rewards[0];
        println!(
            "  mix {:.1}: cluster {c} -> {:6}  ohr {:.4}  (lru {:.4}, hindsight {:.4})",
            share,
            names[choice],
            rewards[choice],
            rewards[0],
            rewards.iter().cloned().fold(f64::MIN, f64::max),
        );
    }
    println!(
        "\nlearned eviction selection vs always-LRU: {:+.2}%",
        (learned_total - lru_total) / lru_total * 100.0
    );
}
