//! Prototype-style run (§5/§6.4): drive the discrete-event client/proxy/
//! origin testbed with Darwin and with a static expert, and report the
//! numbers the paper's prototype section reports — OHR, first-byte latency
//! percentiles, goodput, and HOC critical-section utilization.
//!
//! ```text
//! cargo run --release --example prototype_server
//! ```

use darwin::prelude::*;
use darwin_testbed::{DarwinDriver, StaticDriver, Testbed, TestbedConfig};
use darwin_trace::{concat_traces, MixSpec, TraceGenerator, TrafficClass};
use std::sync::Arc;

fn main() {
    let cache = CacheConfig {
        hoc_bytes: 16 * 1024 * 1024,
        dc_bytes: 1024 * 1024 * 1024,
        ..CacheConfig::paper_default()
    };

    println!("training Darwin offline ...");
    let corpus: Vec<_> = (0..6)
        .map(|i| {
            let mix =
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 5.0);
            TraceGenerator::new(mix, 60 + i as u64).generate(40_000)
        })
        .collect();
    let offline = OfflineConfig {
        hoc_bytes: cache.hoc_bytes,
        feature_prefix_requests: 1_200,
        ..OfflineConfig::default()
    };
    let model = Arc::new(OfflineTrainer::new(offline).train(&corpus));

    // A workload that shifts mid-way (two 40 k-request phases).
    let a = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.85),
        700,
    )
    .generate(40_000);
    let b = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.15),
        701,
    )
    .generate(40_000);
    let workload = concat_traces(&[a, b]);

    let online = OnlineConfig {
        epoch_requests: 40_000,
        warmup_requests: 1_200,
        round_requests: 400,
        ..OnlineConfig::default()
    };

    println!("replaying through the testbed (concurrency sweep) ...\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "conc", "driver", "ohr", "p50 ms", "p99 ms", "goodput Gbps", "lock busy %"
    );
    for concurrency in [4usize, 32, 128] {
        let tb = Testbed::new(TestbedConfig { concurrency, ..TestbedConfig::default() });

        let mut dd = DarwinDriver::new(Arc::clone(&model), online);
        let rd = tb.run(&workload, &cache, &mut dd);
        let mut sd = StaticDriver::new(Expert::new(2, 100).policy);
        let rs = tb.run(&workload, &cache, &mut sd);

        for (name, r) in [("darwin", rd), ("f2s100", rs)] {
            let mut lat = r.latency.clone();
            println!(
                "{:>6} {:>10} {:>10.4} {:>10.1} {:>10.1} {:>12.3} {:>12.2}",
                concurrency,
                name,
                r.cache.hoc_ohr(),
                lat.percentile(50.0) as f64 / 1000.0,
                lat.percentile(99.0) as f64 / 1000.0,
                r.goodput_gbps,
                r.hoc_busy_fraction * 100.0,
            );
        }
    }
    println!(
        "\nDarwin's higher hit rate skips origin round trips, which shows up\n\
         as both lower tail latency and higher goodput — the Fig 7 effect."
    );
}
