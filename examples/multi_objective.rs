//! Objective flexibility (§6.3): the same Darwin pipeline optimizing three
//! different goals — OHR, byte miss ratio, and an OHR-vs-disk-writes
//! trade-off — by swapping only the reward.
//!
//! The cross-expert predictors always predict *hit rates*; for byte-level
//! objectives the online phase converts predicted hit rates into byte
//! estimates with the observed bucketized size distribution, exactly as the
//! paper describes.
//!
//! ```text
//! cargo run --release --example multi_objective
//! ```

use darwin::prelude::*;
use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
use std::sync::Arc;

fn main() {
    let cache = CacheConfig {
        hoc_bytes: 16 * 1024 * 1024,
        dc_bytes: 1024 * 1024 * 1024,
        ..CacheConfig::paper_default()
    };
    let corpus: Vec<_> = (0..6)
        .map(|i| {
            let mix =
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 5.0);
            TraceGenerator::new(mix, 40 + i as u64).generate(50_000)
        })
        .collect();
    let test = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.4),
        888,
    )
    .generate(50_000);
    let online = OnlineConfig {
        epoch_requests: 50_000,
        warmup_requests: 1_500,
        round_requests: 500,
        ..OnlineConfig::default()
    };

    // Evaluate the grid once; retrain per objective from the same
    // evaluations (the "two slight modifications" of §6.3).
    let base_cfg = OfflineConfig {
        hoc_bytes: cache.hoc_bytes,
        feature_prefix_requests: 1_500,
        ..OfflineConfig::default()
    };
    println!("evaluating expert grid once ...");
    let evals = OfflineTrainer::new(base_cfg.clone()).evaluate_corpus(&corpus);

    for objective in
        [Objective::HocOhr, Objective::HocBmr, Objective::OhrMinusDiskWrites { weight_per_mib: 1.0 }]
    {
        let cfg = OfflineConfig { objective, ..base_cfg.clone() };
        let model = Arc::new(OfflineTrainer::new(cfg).train_from_evaluations(&evals));
        let report = run_darwin(&model, &online, &test, &cache);
        let m = report.metrics;
        let chosen = report
            .epochs
            .first()
            .map(|e| model.grid().get(e.chosen_expert).label())
            .unwrap_or_else(|| "-".into());
        println!(
            "objective {:22} -> expert {:8}  OHR {:.4}  BMR {:.4}  missed KiB/req {:.1}",
            objective.label(),
            chosen,
            m.hoc_ohr(),
            m.hoc_bmr(),
            m.hoc_miss_bytes_per_request() / 1024.0,
        );
    }
    println!(
        "\nNote how the BMR/disk-write objectives steer toward experts with\n\
         larger size thresholds (serving bytes) than the pure OHR objective\n\
         (serving many small objects)."
    );
}
