#!/usr/bin/env bash
# Full verification gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== clippy (-D warnings, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== verify: all green =="
