#!/usr/bin/env bash
# Full verification gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== shard fleet equivalence (1, 2, 8 shards) =="
cargo test -p darwin-shard --test equivalence -q -- \
    darwin_fleet_equivalent_at_1_shard \
    darwin_fleet_equivalent_at_2_shards \
    darwin_fleet_equivalent_at_8_shards

echo "== batched ingest equivalence (push_batch + producer lanes ≡ replay) =="
cargo test -p darwin-shard --test batched_ingest -q

echo "== gateway loopback smoke (127.0.0.1 replay ≡ in-process replay) =="
cargo test -p darwin-gateway --test loopback -q -- \
    static_gateway_equivalent_to_sequential_replay \
    darwin_gateway_equivalent_to_sequential_replay \
    stats_frame_returns_parseable_snapshot \
    shutdown_frame_drains_gateway \
    resize_frame_reshards_elastic_gateway \
    static_gateway_refuses_resize_with_error_ack

echo "== chaos: fault-plan conservation (proptest + bitwise regression) =="
cargo test -p darwin-shard --test chaos -q

echo "== journal determinism (byte-identical journals at 1, 2, 8 shards; zero dropped events) =="
cargo test -p darwin-shard --test journal_determinism -q

echo "== restore equivalence (boundary-kill warm restore bitwise at 1, 2, 8 shards) =="
cargo test -p darwin-shard --test restore -q -- \
    warm_boundary_restore_bitwise_at_1_shard \
    warm_boundary_restore_bitwise_at_2_shards \
    warm_boundary_restore_bitwise_at_8_shards \
    corrupted_checkpoint_falls_back_cold_bitwise

echo "== failover equivalence (standby promotion bitwise at 1, 2, 8 shards; zero Unavailable) =="
cargo test -p darwin-shard --test failover -q

echo "== replica + RESIZE wire hostile corpus (never panic, never silent mis-apply) =="
cargo test -p darwin-rebalance --test codec_props -q
cargo test -p darwin-gateway --test wire_codec -q

echo "== chaos bench smoke (scripted shard deaths, exactly-once answering) =="
cargo run --release -p darwin-bench --bin experiments -- chaos --out target/chaos_smoke

echo "== recovery bench smoke (warm vs cold hit-ratio recovery) =="
cargo run --release -p darwin-bench --bin experiments -- recovery --out target/recovery_smoke

echo "== shard scaling smoke (live rps must bend upward with shard count) =="
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -le 1 ]; then
    echo "   skipped: $cores core visible — live scaling needs cores to spare"
else
    cargo run --release -p darwin-bench --bin experiments -- shard --out target/shard_smoke
    awk '
        /"shards": 1,/ { want = 1 }
        /"shards": 8,/ { want = 8 }
        /"live_rps":/  {
            gsub(/[",]/, "")
            if (want == 1) one = $2
            if (want == 8) eight = $2
            want = 0
        }
        END {
            if (one <= 0 || eight <= 0) { print "   missing live_rps rows"; exit 1 }
            ratio = eight / one
            printf "   live rps: 1 shard %.0f, 8 shards %.0f (%.2fx)\n", one, eight, ratio
            if (ratio <= 1.5) {
                print "   FAIL: live rps at 8 shards must exceed 1.5x the 1-shard rate"
                exit 1
            }
        }' target/shard_smoke/BENCH_shard.json
fi

echo "== overload: shed-conservation ledger (processed+dropped+unavailable+shed at 1, 2, 8 shards) =="
cargo test -p darwin-shard --test overload -q

echo "== overload: gateway valves (slow-client eviction, throttle fairness, net-fault chaos) =="
cargo test -p darwin-gateway --test overload -q

echo "== overload bench smoke (flash crowd: ledger, fairness, journal determinism over sockets) =="
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -le 1 ]; then
    echo "   skipped: $cores core visible — greedy client + fair cohort need cores to spare"
else
    cargo run --release -p darwin-bench --bin experiments -- overload --out target/overload_smoke
    awk '
        /"starved_conns":/ { gsub(/[",]/, ""); if ($2 + 0 > 0) { print "   FAIL: a fair connection starved"; exit 1 } }
        /"identical":/     { gsub(/[",]/, ""); if ($2 != "true") { print "   FAIL: net-fault journals diverged across reruns"; exit 1 } seen = 1 }
        END { if (!seen) { print "   missing identical field"; exit 1 } print "   ledger + fairness + determinism asserts held (see BENCH_overload.json)" }
    ' target/overload_smoke/BENCH_overload.json
fi

echo "== rebalance: 4->8->4 resize equivalence (ledger, journal, bitwise reruns) =="
cargo test -p darwin-rebalance --test resize -q

echo "== rebalance bench smoke (zero Unavailable, dip recovered within one checkpoint window) =="
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -le 1 ]; then
    echo "   skipped: $cores core visible — the live elastic fleet needs cores to spare"
else
    cargo run --release -p darwin-bench --bin experiments -- rebalance --out target/rebalance_smoke
    awk '
        /"unavailable":/ { gsub(/[",]/, ""); if ($2 + 0 > 0) { print "   FAIL: Unavailable verdicts during resize"; exit 1 } }
        /"conserved":/   { gsub(/[",]/, ""); if ($2 != "true") { print "   FAIL: conservation ledger broken"; exit 1 } seen = 1 }
        END { if (!seen) { print "   missing conserved field"; exit 1 } print "   conservation + recovery asserts held (see BENCH_rebalance.json)" }
    ' target/rebalance_smoke/BENCH_rebalance.json
fi

echo "== failover bench smoke (zero Unavailable with a standby, quantified fraction without) =="
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -le 1 ]; then
    echo "   skipped: $cores core visible — the replicated fleet needs cores to spare"
else
    cargo run --release -p darwin-bench --bin experiments -- failover --out target/failover_smoke
    awk '
        /"scenario": "replicated"/   { mode = "rep" }
        /"scenario": "unreplicated"/ { mode = "unrep" }
        /"unavailable":/ {
            gsub(/[",]/, "")
            if (mode == "rep" && $2 + 0 > 0) { print "   FAIL: Unavailable verdicts despite a hot standby"; exit 1 }
            if (mode == "unrep" && $2 + 0 == 0) { print "   FAIL: baseline lost its degradation — nothing to erase"; exit 1 }
        }
        /"failovers":/ { gsub(/[",]/, ""); if (mode == "rep" && $2 + 0 != 1) { print "   FAIL: expected exactly one promotion"; exit 1 } seen = 1 }
        END { if (!seen) { print "   missing failovers field"; exit 1 } print "   zero-Unavailable + promotion asserts held (see BENCH_failover.json)" }
    ' target/failover_smoke/BENCH_failover.json
fi

echo "== rustdoc (--no-deps, warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== rustfmt (--check) =="
cargo fmt --all -- --check

echo "== clippy (-D warnings, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== verify: all green =="
