//! Offline vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), range and
//! tuple strategies, [`collection::vec`], [`bool::ANY`], and the
//! `prop_assert*` macros. There is no shrinking — a failing case panics
//! with the ordinary assertion message — but generation is fully
//! deterministic: every test function derives its RNG seed from its module
//! path, name, and case index, so failures reproduce exactly across runs.

/// Strategy: a recipe for generating values of one type.
pub mod strategy {
    use rand::rngs::SmallRng;

    /// A value-generation strategy. Unlike upstream proptest there is no
    /// value tree or shrinking; a strategy just samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<T: Clone> Strategy for core::ops::Range<T>
    where
        core::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl<T: Clone> Strategy for core::ops::RangeInclusive<T>
    where
        core::ops::RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy producing a fixed value every time.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for an unbiased random `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy for any `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut SmallRng) -> core::primitive::bool {
            rng.gen::<core::primitive::bool>()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A range of collection sizes (`lo` inclusive, `hi` exclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty proptest size range");
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a strategy generating vectors of values from `element` with
    /// lengths in `size` (an exact `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and deterministic seeding helpers.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Derives a deterministic seed from a test's identity and case index
    /// (FNV-1a over the name, mixed with the index).
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Builds the case RNG from a seed.
    pub fn rng_for(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each function's arguments are drawn from the
/// strategies after `in`; the body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let __seed = $crate::test_runner::case_seed(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let mut __rng = $crate::test_runner::rng_for(__seed);
                    let ( $($pat,)+ ) = (
                        $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two values differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the rest of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Generated values respect their strategies' bounds.
        #[test]
        fn bounds_hold(
            x in 10u64..20,
            f in 0.0f64..=1.0,
            pair in (0u32..5, -3i64..3),
            mut v in crate::collection::vec((0u64..50, crate::bool::ANY), 1..10),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(pair.0 < 5);
            prop_assert!((-3..3).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 10);
            v.sort();
            prop_assert!(v.iter().all(|&(id, _)| id < 50));
        }

        /// Exact vec sizes are honored, including nested vecs.
        #[test]
        fn exact_sizes(grid in crate::collection::vec(crate::collection::vec(-1.0f64..1.0, 3), 2..6)) {
            prop_assert!((2..6).contains(&grid.len()));
            for row in &grid {
                prop_assert_eq!(row.len(), 3);
            }
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = crate::test_runner::case_seed("mod::test", 3);
        let b = crate::test_runner::case_seed("mod::test", 3);
        assert_eq!(a, b);
        assert_ne!(a, crate::test_runner::case_seed("mod::test", 4));
        assert_ne!(a, crate::test_runner::case_seed("mod::other", 3));
    }
}
