//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored `serde`
//! crate's [`Value`]-based data model. Because the sandbox has no `syn` or
//! `quote`, the item is parsed directly from the raw `TokenStream`. The
//! supported grammar covers everything this workspace derives on:
//!
//! * structs with named fields (any visibility, `#[...]` attributes and doc
//!   comments are skipped);
//! * tuple and unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   serde's JSON default);
//! * `#[serde(default)]` on named fields: a missing field deserializes to
//!   `Default::default()` instead of erroring (serialization is unchanged).
//!
//! Generics and every other `#[serde(...)]` attribute are intentionally not
//! supported; deriving on such an item produces a compile error naming this
//! limitation rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// A named field plus whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let item = match parse_item(&tokens) {
        Ok(item) => item,
        Err(msg) => {
            let escaped = msg.replace('"', "\\\"");
            return format!("compile_error!(\"serde_derive (vendored): {escaped}\");")
                .parse()
                .unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| {
        panic!("serde_derive (vendored) generated invalid Rust: {e}\n{code}")
    })
}

/// Skips attributes (`#[...]` / `#![...]`, which is how doc comments arrive)
/// starting at `i`; returns the next index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == '!' {
                            i += 1;
                        }
                    }
                }
                // The bracketed attribute body.
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
    }
    i
}

fn parse_item(tokens: &[TokenTree]) -> Result<Item, String> {
    let mut i = skip_attrs(tokens, 0);
    i = skip_vis(tokens, i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the vendored derive"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?;
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity =
                    count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>());
                Ok(Item::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(&g.stream().into_iter().collect::<Vec<_>>())?;
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Inspects one bracketed attribute body: returns true for `serde(default)`,
/// false for any non-serde attribute (doc comments arrive this way), and an
/// error for every other `serde(...)` form — unsupported attributes must not
/// silently change semantics.
fn parse_serde_attr(tokens: &[TokenTree]) -> Result<bool, String> {
    let [TokenTree::Ident(id), TokenTree::Group(g)] = tokens else {
        return Ok(false);
    };
    if id.to_string() != "serde" || g.delimiter() != Delimiter::Parenthesis {
        return Ok(false);
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match &inner[..] {
        [TokenTree::Ident(d)] if d.to_string() == "default" => Ok(true),
        _ => Err(format!(
            "unsupported attribute `#[serde({})]`: the vendored derive only knows \
             `#[serde(default)]`",
            g.stream()
        )),
    }
}

/// Parses `field: Type, ...` lists, returning the fields in order with their
/// `#[serde(default)]` markers.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                i += 1;
            }
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    default |=
                        parse_serde_attr(&g.stream().into_iter().collect::<Vec<_>>())?;
                    i += 1;
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(tokens, i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // the comma
        }
        fields.push(Field { name: field, default });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct/variant (top-level commas + 1).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            // A trailing comma does not start another field.
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && idx + 1 < tokens.len() => {
                arity += 1;
            }
            _ => {}
        }
    }
    arity
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "entries.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Null\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(\"{vname}\".to_string()),\n"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), \
                                 ::serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds =
                                fields.iter().map(|f| f.name.clone()).collect::<Vec<_>>().join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
                                 ::serde::Value::Object(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// The `field: <expr>` initializer for one named field: an error on a
/// missing key, unless the field is `#[serde(default)]`.
fn named_field_init(f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match ::serde::get_field(entries, \"{name}\") {{\n\
                 Ok(v) => ::serde::Deserialize::from_value(v)?,\n\
                 Err(_) => ::core::default::Default::default(),\n\
             }}"
        )
    } else {
        format!(
            "{name}: ::serde::Deserialize::from_value(\
             ::serde::get_field(entries, \"{name}\")?)?"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(named_field_init).collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let entries = v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected object for struct \", \
                             stringify!({name}))))?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let items = v.as_array().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected array for struct \", \
                             stringify!({name}))))?;\n\
                         if items.len() != {arity} {{\n\
                             return Err(::serde::Error::custom(\"wrong tuple arity\"));\n\
                         }}\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),\n", v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let items = payload.as_array().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected array payload\"))?;\n\
                                     if items.len() != {arity} {{\n\
                                         return Err(::serde::Error::custom(\
                                             \"wrong variant arity\"));\n\
                                     }}\n\
                                     return Ok({name}::{vname}({}));\n\
                                 }}\n",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(named_field_init).collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let entries = payload.as_object().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected object payload\"))?;\n\
                                     return Ok({name}::{vname} {{ {} }});\n\
                                 }}\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if let Some(tag) = v.as_str() {{\n\
                             match tag {{\n\
                                 {unit_arms}\n\
                                 _ => return Err(::serde::Error::custom(format!(\
                                     \"unknown variant `{{tag}}`\"))),\n\
                             }}\n\
                         }}\n\
                         if let Some(entries) = v.as_object() {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     _ => return Err(::serde::Error::custom(format!(\
                                         \"unknown variant `{{tag}}`\"))),\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(concat!(\
                             \"expected enum \", stringify!({name}))))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
