//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Implements the two distributions this workspace draws from:
//!
//! * [`StandardNormal`] — N(0, 1) via the Box–Muller transform;
//! * [`Zipf`] — Zipf(n, s) over ranks `1..=n` via rejection-inversion
//!   (Hörmann & Derflinger), the same family of algorithm upstream uses.
//!
//! As with the vendored `rand`, streams are deterministic per seed but not
//! bit-compatible with the real `rand_distr` crate.

use rand::{Distribution, Rng, RngCore};

/// Uniform `f64` in `[0, 1)` with 53 bits of precision, usable behind
/// `?Sized` generator references (`RngCore` methods carry no `Sized` bound).
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The standard normal distribution N(0, 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: exact, stateless (no cached spare), branch-free.
        let u1: f64 = unit_f64(rng).max(f64::MIN_POSITIVE);
        let u2: f64 = unit_f64(rng);
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

/// Error constructing a [`Zipf`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` was zero.
    NTooSmall,
    /// The exponent was not a positive finite number.
    STooSmall,
}

impl core::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ZipfError::NTooSmall => write!(f, "Zipf requires n >= 1"),
            ZipfError::STooSmall => write!(f, "Zipf requires s > 0 and finite"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^(-s)`. Samples are returned as `F` (the rank as a float),
/// matching the upstream API shape `Zipf<f64>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf<F> {
    n: F,
    s: F,
    /// H(0.5), cached.
    h_lo: F,
    /// H(n + 0.5) − H(0.5), cached.
    h_span: F,
}

impl Zipf<f64> {
    /// Creates Zipf(n, s). Fails if `n == 0` or `s` is not positive/finite.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NTooSmall);
        }
        if s <= 0.0 || !s.is_finite() {
            return Err(ZipfError::STooSmall);
        }
        let nf = n as f64;
        let h_lo = h_integral(0.5, s);
        let h_span = h_integral(nf + 0.5, s) - h_lo;
        Ok(Self { n: nf, s, h_lo, h_span })
    }
}

/// H(x) = ∫₁ˣ t^(−s) dt, the antiderivative used by rejection-inversion.
#[inline]
fn h_integral(x: f64, s: f64) -> f64 {
    let one_minus_s = 1.0 - s;
    if one_minus_s.abs() < 1e-9 {
        x.ln()
    } else {
        (x.powf(one_minus_s) - 1.0) / one_minus_s
    }
}

/// Inverse of [`h_integral`].
#[inline]
fn h_integral_inv(y: f64, s: f64) -> f64 {
    let one_minus_s = 1.0 - s;
    if one_minus_s.abs() < 1e-9 {
        y.exp()
    } else {
        (1.0 + y * one_minus_s).powf(1.0 / one_minus_s)
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.n <= 1.0 {
            return 1.0;
        }
        // Rejection-inversion: draw X on [0.5, n + 0.5] with density
        // ∝ x^(−s) by inverting H, round to the nearest integer rank k, and
        // accept with probability k^(−s) / ∫_{k−½}^{k+½} x^(−s) dx (≤ 1 by
        // convexity of x^(−s)). Acceptance is ~90 %+ for CDN-like s < 1.5.
        loop {
            let u: f64 = unit_f64(rng);
            let x = h_integral_inv(self.h_lo + u * self.h_span, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            let envelope = h_integral(k + 0.5, self.s) - h_integral(k - 0.5, self.s);
            let accept = k.powf(-self.s) / envelope;
            if unit_f64(rng) < accept {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.sample(StandardNormal)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn zipf_ranks_in_range_and_skewed() {
        let mut rng = SmallRng::seed_from_u64(12);
        let z = Zipf::new(1000, 1.0).unwrap();
        let n = 50_000;
        let mut rank1 = 0usize;
        for _ in 0..n {
            let k: f64 = rng.sample(z);
            assert!((1.0..=1000.0).contains(&k));
            assert_eq!(k, k.floor());
            if k == 1.0 {
                rank1 += 1;
            }
        }
        // For s = 1, n = 1000: P(1) = 1 / H_1000 ≈ 0.1336.
        let p1 = rank1 as f64 / n as f64;
        assert!((p1 - 0.1336).abs() < 0.01, "P(rank 1) = {p1}");
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(1, 0.5).is_ok());
    }
}
