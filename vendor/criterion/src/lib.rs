//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface the workspace benchmarks use — `Criterion`,
//! benchmark groups, `Bencher::iter`, throughput annotation, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros — backed by a
//! simple wall-clock timer instead of criterion's statistical machinery.
//! Each benchmark runs a short warm-up, then a fixed number of timed
//! iterations, and prints the mean time per iteration.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Builds an identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs closures under the timer.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches and lazy statics).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

fn run_bench(group: Option<&str>, id: &str, iters: u64, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, mean_ns: 0.0 };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let per_iter = format_ns(b.mean_ns);
    match throughput {
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            let rate = n as f64 / (b.mean_ns * 1e-9);
            println!("bench {label}: {per_iter}/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            let rate = n as f64 / (b.mean_ns * 1e-9) / (1024.0 * 1024.0);
            println!("bench {label}: {per_iter}/iter ({rate:.1} MiB/s)");
        }
        _ => println!("bench {label}: {per_iter}/iter"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(Some(&self.name), &id.id, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(
            Some(&self.name),
            &id.id,
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (matching the upstream API; no-op here).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    /// Default configuration.
    pub fn default_config() -> Self {
        Self::default()
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.effective_sample_size(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let n = self.effective_sample_size();
        run_bench(None, &id.id, n, None, &mut f);
        self
    }

    fn effective_sample_size(&self) -> u64 {
        if self.sample_size > 0 {
            self.sample_size
        } else {
            20
        }
    }
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &k| {
                b.iter(|| black_box(k * 2))
            });
            g.finish();
        }
        // 1 warm-up + 3 timed iterations.
        assert_eq!(ran, 4);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
