//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the small slice of the `rand` API it actually uses:
//! [`SmallRng`] (an xoshiro256++ generator seeded through SplitMix64),
//! the [`Rng`] / [`SeedableRng`] traits, uniform range sampling, and the
//! [`Distribution`] trait that `rand_distr` builds on.
//!
//! The generator is fully deterministic: a given seed produces the same
//! stream on every platform and every run, which is what the repository's
//! reproducibility guarantees (seeded traces, seeded training) rely on.
//! Streams do *not* match the upstream `rand` crate bit-for-bit — only
//! self-consistency is promised, and every consumer in this workspace
//! seeds its generators explicitly.

use core::ops::{Range, RangeInclusive};

/// Core generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generator interface. This workspace only uses
/// [`SeedableRng::seed_from_u64`].
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A value that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// True when the range contains no values.
    fn is_empty_range(&self) -> bool;
}

macro_rules! uint_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(!self.is_empty_range(), "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (uniform_u128_below(rng, span) as $t)
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(!self.is_empty_range(), "cannot sample empty range");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                *self.start() + (uniform_u128_below(rng, span) as $t)
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(!self.is_empty_range(), "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128_below(rng, span) as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(!self.is_empty_range(), "cannot sample empty range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + uniform_u128_below(rng, span) as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

uint_range_impl!(u8, u16, u32, u64, usize);
int_range_impl!(i8, i16, i32, i64, isize);

/// Uniform draw from `[0, bound)` by widening multiply with rejection
/// (no modulo bias). `bound` of 0 means the full 2^128 span is never
/// requested here; callers guarantee `bound >= 1`.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound >= 1);
    if bound == 1 {
        return 0;
    }
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        // Lemire's widening-multiply method with rejection.
        let zone = bound.wrapping_neg() % bound; // 2^64 mod bound
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= zone {
                return (m >> 64) as u128;
            }
        }
    }
    // > 64-bit spans (only reachable through i128 widening of u64/i64
    // inclusive ranges spanning the full domain): simple rejection.
    let mask = u128::MAX >> bound.leading_zeros().saturating_sub(1);
    loop {
        let x = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) & mask;
        if x < bound {
            return x;
        }
    }
}

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_float(rng) as $t;
                let v = self.start + (self.end - self.start) * u;
                if v < self.end { v } else { self.start }
            }
            fn is_empty_range(&self) -> bool {
                !(self.start < self.end)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let u = unit_float(rng) as $t;
                self.start() + (self.end() - self.start()) * u
            }
            fn is_empty_range(&self) -> bool {
                !(self.start() <= self.end())
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_float<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A sampling distribution (the `rand_distr` extension point).
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution behind [`Rng::gen`]: uniform `[0, 1)` for
/// floats, full-domain uniform for integers and `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_float(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level generator methods (blanket-implemented over [`RngCore`]).
/// None of the methods bound `Self: Sized`, so they are usable behind
/// `&mut R` where `R: Rng + ?Sized` — mirroring upstream.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0, 1]");
        unit_float(self) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: Distribution<T>,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 0xAEF1_7502_07C2_3E9D, 1];
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility (`StdRng` is not used for anything
    /// security-relevant in this workspace).
    pub type StdRng = SmallRng;
}

/// `rand::distributions` module shim (the [`Distribution`] trait and
/// [`Standard`] live at the crate root too, mirroring upstream re-exports).
pub mod distributions {
    pub use super::{Distribution, Standard};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g: f64 = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
