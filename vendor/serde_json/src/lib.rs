//! Offline vendored stand-in for `serde_json`.
//!
//! Converts between JSON text and the vendored `serde` crate's [`Value`]
//! data model: [`to_string`] / [`to_string_pretty`] serialize anything
//! implementing the vendored `Serialize`, and [`from_str`] parses JSON with
//! a recursive-descent parser and reconstructs any vendored `Deserialize`.
//!
//! JSON quirks handled the same way upstream does: non-finite floats
//! serialize as `null`, and integers beyond `i64`/`u64` fail to parse as
//! integers and fall back to `f64`.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Result alias matching the upstream crate.
pub type Result<T> = core::result::Result<T, Error>;

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips
                // (and always includes a `.0` or exponent, e.g. `1.0`).
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = core::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::UInt(1), Value::Float(2.5)])),
            ("b".into(), Value::Str("x \"y\" \\ z\nnl".into())),
            ("c".into(), Value::Null),
            ("d".into(), Value::Bool(true)),
            ("e".into(), Value::Int(-3)),
        ]);
        let s = to_string(&v).unwrap();
        let back = parse_value(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn float_precision_round_trips() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 1e300, -0.0, 123456789.123456789] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x, back, "{s}");
        }
    }

    #[test]
    fn nan_serializes_as_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"\\q\"").is_err());
    }
}
