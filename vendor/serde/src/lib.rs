//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! serialization surface the workspace uses — `#[derive(Serialize,
//! Deserialize)]` plus `serde_json::{to_string, from_str}` — on top of a
//! simplified data model: every serializable type converts to and from a
//! JSON-shaped [`Value`] tree instead of driving serde's
//! visitor/serializer machinery. The derive macros (in the sibling
//! `serde_derive` crate) generate `to_value`/`from_value` implementations.
//!
//! Representation choices mirror serde's JSON defaults so the emitted files
//! remain human-readable: structs become objects keyed by field name, unit
//! enum variants become strings, and data-carrying variants become
//! single-key objects (externally tagged).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the intermediate representation every serializable
/// type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers (and any integer parsed with a sign).
    Int(i64),
    /// Non-negative integers (kept unsigned to round-trip `u64` exactly).
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short human-readable name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: core::fmt::Display>(msg: T) -> Self {
        Self { msg: msg.to_string() }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in an object's entries.
pub fn get_field<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Serialization to the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            v.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    _ => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            v.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);
int_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(x) => Ok(x as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    // Non-finite floats serialize as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(format!(
                        "expected number, got {}",
                        v.kind()
                    ))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, got {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + core::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
                let expected = 0usize $(+ { let _ = $idx; 1 })+;
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Map keys serialize through strings (JSON object keys).
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! numeric_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::custom(format!("invalid numeric key `{s}`")))
            }
        }
    )*};
}

numeric_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! map_impl {
    ($($map:ident),*) => {$(
        impl<K: MapKey + Ord + core::hash::Hash, V: Serialize> Serialize
            for std::collections::$map<K, V>
        {
            fn to_value(&self) -> Value {
                let mut entries: Vec<(String, Value)> =
                    self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Object(entries)
            }
        }
        impl<K: MapKey + Ord + core::hash::Hash, V: Deserialize> Deserialize
            for std::collections::$map<K, V>
        {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_object()
                    .ok_or_else(|| Error::custom(format!("expected object, got {}", v.kind())))?
                    .iter()
                    .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                    .collect()
            }
        }
    )*};
}

map_impl!(HashMap, BTreeMap);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
