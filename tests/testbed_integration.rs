//! Integration tests for the prototype testbed with the full Darwin driver.

use darwin::prelude::*;
use darwin_nn::TrainConfig;
use darwin_testbed::{DarwinDriver, StaticDriver, Testbed, TestbedConfig};
use darwin_trace::{concat_traces, MixSpec, TraceGenerator, TrafficClass};
use std::sync::Arc;

const HOC: u64 = 4 * 1024 * 1024;

fn cache() -> CacheConfig {
    CacheConfig { hoc_bytes: HOC, dc_bytes: 256 * 1024 * 1024, ..CacheConfig::paper_default() }
}

fn model() -> Arc<DarwinModel> {
    let corpus: Vec<_> = (0..5)
        .map(|i| {
            TraceGenerator::new(
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 4.0),
                800 + i as u64,
            )
            .generate(15_000)
        })
        .collect();
    let cfg = darwin::OfflineConfig {
        grid: darwin::ExpertGrid::new(vec![
            Expert::new(1, 20),
            Expert::new(1, 500),
            Expert::new(5, 100),
        ]),
        hoc_bytes: HOC,
        nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
        n_clusters: 2,
        feature_prefix_requests: 600,
        ..darwin::OfflineConfig::default()
    };
    Arc::new(OfflineTrainer::new(cfg).train(&corpus))
}

fn online() -> OnlineConfig {
    OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 600,
        round_requests: 300,
        ..OnlineConfig::default()
    }
}

#[test]
fn darwin_driver_runs_in_testbed_and_switches_experts() {
    let m = model();
    let a = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1).generate(20_000);
    let b = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 2).generate(20_000);
    let workload = concat_traces(&[a, b]);
    let tb = Testbed::new(TestbedConfig { concurrency: 8, ..TestbedConfig::default() });
    let mut driver = DarwinDriver::new(Arc::clone(&m), online());
    let report = tb.run(&workload, &cache(), &mut driver);

    assert_eq!(report.completed as usize, workload.len());
    assert!(!driver.controller().switches().is_empty(), "Darwin never switched experts");
    assert_eq!(report.driver, "darwin");
    assert!(report.goodput_gbps > 0.0);
}

#[test]
fn darwin_matches_or_beats_static_in_testbed_ohr() {
    let m = model();
    let a = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 3).generate(20_000);
    let b = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 4).generate(20_000);
    let workload = concat_traces(&[a, b]);
    let tb = Testbed::new(TestbedConfig { concurrency: 8, ..TestbedConfig::default() });

    let mut dd = DarwinDriver::new(Arc::clone(&m), online());
    let rd = tb.run(&workload, &cache(), &mut dd);

    // The worst static expert of the model's grid.
    let mut worst_ohr = f64::INFINITY;
    for e in m.grid().experts() {
        let mut sd = StaticDriver::new(e.policy);
        let rs = tb.run(&workload, &cache(), &mut sd);
        worst_ohr = worst_ohr.min(rs.cache.hoc_ohr());
    }
    assert!(
        rd.cache.hoc_ohr() >= worst_ohr,
        "darwin {} below worst static {}",
        rd.cache.hoc_ohr(),
        worst_ohr
    );
}

#[test]
fn testbed_latency_reflects_cache_outcomes() {
    // All-admit policy on a popular catalog: most requests become HOC hits
    // with ~2x client-proxy OWD latency; compare against a never-admit
    // configuration whose requests pay origin round trips.
    let trace = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 5).generate(8_000);
    let tb = Testbed::new(TestbedConfig { concurrency: 4, ..TestbedConfig::default() });

    let mut admit = StaticDriver::new(ThresholdPolicy::new(0, u64::MAX));
    let ra = tb.run(&trace, &cache(), &mut admit);
    let mut never = StaticDriver::new(ThresholdPolicy::new(u32::MAX, 1));
    let rn = tb.run(&trace, &cache(), &mut never);

    assert!(ra.cache.hoc_ohr() > rn.cache.hoc_ohr());
    assert!(
        ra.latency.clone().mean() < rn.latency.clone().mean(),
        "higher OHR must lower mean first-byte latency"
    );
}

#[test]
fn shared_resources_create_saturation() {
    // Goodput must grow sub-linearly once the shared disk/origin saturate.
    let trace = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 6).generate(12_000);
    let run_at = |c: usize| {
        let tb = Testbed::new(TestbedConfig { concurrency: c, ..TestbedConfig::default() });
        let mut d = StaticDriver::new(ThresholdPolicy::new(2, 100 * 1024));
        tb.run(&trace, &cache(), &mut d).goodput_gbps
    };
    let g64 = run_at(64);
    let g2048 = run_at(2048);
    assert!(g2048 < g64 * 32.0 * 0.8, "no saturation: 64 clients {g64} Gbps, 2048 clients {g2048} Gbps");
}
