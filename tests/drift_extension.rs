//! Integration tests for the drift-restart extension: with
//! `drift_threshold` set, the controller restarts its epoch when the traffic
//! shifts mid-epoch, instead of waiting for the fixed epoch boundary.

use darwin::online::OnlineController;
use darwin::prelude::*;
use darwin_cache::CacheServer;
use darwin_nn::TrainConfig;
use darwin_trace::{concat_traces, MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::Arc;

const HOC: u64 = 4 * 1024 * 1024;

fn cache() -> CacheConfig {
    CacheConfig { hoc_bytes: HOC, dc_bytes: 256 * 1024 * 1024, ..CacheConfig::paper_default() }
}

fn model() -> Arc<DarwinModel> {
    let corpus: Vec<Trace> = (0..5)
        .map(|i| {
            TraceGenerator::new(
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 4.0),
                1400 + i as u64,
            )
            .generate(15_000)
        })
        .collect();
    let cfg = darwin::OfflineConfig {
        grid: darwin::ExpertGrid::new(vec![
            Expert::new(1, 20),
            Expert::new(1, 500),
            Expert::new(5, 20),
            Expert::new(5, 500),
        ]),
        hoc_bytes: HOC,
        nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
        n_clusters: 3,
        feature_prefix_requests: 700,
        ..darwin::OfflineConfig::default()
    };
    Arc::new(OfflineTrainer::new(cfg).train(&corpus))
}

/// One very long epoch with a hard mix shift at 25 % of it: fixed epochs
/// stay locked to the stale expert; drift restarts re-identify.
fn shifted_workload() -> Trace {
    let a = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.95),
        1450,
    )
    .generate(15_000);
    let b = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.05),
        1451,
    )
    .generate(45_000);
    concat_traces(&[a, b])
}

fn run(cfg: OnlineConfig) -> (f64, usize, usize) {
    let w = shifted_workload();
    let model = model();
    let mut ctrl = OnlineController::new(model, cfg);
    let mut server = CacheServer::new(cache());
    server.set_policy(ctrl.current_expert().policy);
    for r in &w {
        server.process(r);
        if let Some(e) = ctrl.observe(r, &server.metrics()) {
            server.set_policy(e.policy);
        }
    }
    (server.metrics().hoc_ohr(), ctrl.drift_restarts(), ctrl.epochs().len())
}

fn base_cfg() -> OnlineConfig {
    OnlineConfig {
        epoch_requests: 60_000, // the whole workload is one fixed epoch
        warmup_requests: 700,
        round_requests: 400,
        ..OnlineConfig::default()
    }
}

#[test]
fn drift_restart_triggers_on_mid_epoch_shift() {
    let (_, restarts, epochs) = run(OnlineConfig { drift_threshold: Some(0.4), ..base_cfg() });
    assert!(restarts >= 1, "no drift restart on a 95:5 → 5:95 shift");
    assert!(epochs >= 2, "restart should have produced a second identification");
}

#[test]
fn drift_restart_improves_ohr_over_fixed_epoch() {
    let (fixed_ohr, fixed_restarts, _) = run(base_cfg());
    let (drift_ohr, _, _) = run(OnlineConfig { drift_threshold: Some(0.4), ..base_cfg() });
    assert_eq!(fixed_restarts, 0);
    assert!(
        drift_ohr >= fixed_ohr * 0.98,
        "drift restarts hurt: {drift_ohr:.4} vs fixed {fixed_ohr:.4}"
    );
}

#[test]
fn no_spurious_restarts_on_stationary_traffic() {
    let model = model();
    let w = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        1452,
    )
    .generate(40_000);
    let mut ctrl = OnlineController::new(
        model,
        OnlineConfig {
            epoch_requests: 40_000,
            warmup_requests: 700,
            round_requests: 400,
            drift_threshold: Some(0.5),
            ..OnlineConfig::default()
        },
    );
    let mut server = CacheServer::new(cache());
    server.set_policy(ctrl.current_expert().policy);
    for r in &w {
        server.process(r);
        if let Some(e) = ctrl.observe(r, &server.metrics()) {
            server.set_policy(e.policy);
        }
    }
    assert_eq!(ctrl.drift_restarts(), 0, "stationary traffic must not restart");
}
