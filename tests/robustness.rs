//! Failure injection and robustness: Darwin's behaviour when its learned
//! components are wrong, degenerate, or face traffic they never saw.
//!
//! The design rationale (§4) is that Darwin "directly testing and then
//! selecting among multiple good candidates can better accommodate any
//! potential errors in feature collection, clustering, etc." — these tests
//! hold it to that.

use darwin::prelude::*;
use darwin_nn::TrainConfig;
use darwin_trace::{drift_popularity, flash_crowd, MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::Arc;

const HOC: u64 = 4 * 1024 * 1024;

fn cache() -> CacheConfig {
    CacheConfig { hoc_bytes: HOC, dc_bytes: 256 * 1024 * 1024, ..CacheConfig::paper_default() }
}

fn grid() -> darwin::ExpertGrid {
    darwin::ExpertGrid::new(vec![
        Expert::new(1, 20),
        Expert::new(1, 500),
        Expert::new(5, 20),
        Expert::new(5, 500),
    ])
}

fn corpus() -> Vec<Trace> {
    (0..5)
        .map(|i| {
            TraceGenerator::new(
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 4.0),
                600 + i as u64,
            )
            .generate(15_000)
        })
        .collect()
}

fn base_cfg() -> darwin::OfflineConfig {
    darwin::OfflineConfig {
        grid: grid(),
        hoc_bytes: HOC,
        nn_train: TrainConfig { epochs: 50, ..TrainConfig::default() },
        n_clusters: 2,
        feature_prefix_requests: 700,
        ..darwin::OfflineConfig::default()
    }
}

fn online() -> OnlineConfig {
    OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 700,
        round_requests: 400,
        ..OnlineConfig::default()
    }
}

fn worst_and_best_static(trace: &Trace) -> (f64, f64) {
    let ohrs: Vec<f64> =
        grid().experts().iter().map(|e| darwin::run_static(*e, trace, &cache()).hoc_ohr()).collect();
    (ohrs.iter().cloned().fold(f64::MAX, f64::min), ohrs.iter().cloned().fold(f64::MIN, f64::max))
}

#[test]
fn untrained_predictors_do_not_sink_darwin_below_worst_static() {
    // Predictors with essentially no training (1 epoch, zero learning rate)
    // produce near-random conditionals. The deployed expert's *real* rewards
    // must still anchor identification above the worst static expert.
    let cfg = darwin::OfflineConfig {
        nn_train: TrainConfig { epochs: 1, learning_rate: 0.0, ..TrainConfig::default() },
        ..base_cfg()
    };
    let model = Arc::new(OfflineTrainer::new(cfg).train(&corpus()));
    let test = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        1100,
    )
    .generate(20_000);
    let d = darwin::run_darwin(&model, &online(), &test, &cache()).metrics.hoc_ohr();
    let (worst, _) = worst_and_best_static(&test);
    assert!(d >= worst * 0.9, "garbage predictors sank darwin ({d:.4}) below worst static ({worst:.4})");
}

#[test]
fn single_cluster_degenerate_model_still_works() {
    let cfg = darwin::OfflineConfig { n_clusters: 1, ..base_cfg() };
    let model = Arc::new(OfflineTrainer::new(cfg).train(&corpus()));
    assert_eq!(model.num_clusters(), 1);
    let test = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 1101).generate(20_000);
    let report = darwin::run_darwin(&model, &online(), &test, &cache());
    assert_eq!(report.metrics.requests as usize, test.len());
    assert!(report.metrics.hoc_ohr() > 0.0);
}

#[test]
fn trace_shorter_than_warmup_completes_gracefully() {
    let model = Arc::new(OfflineTrainer::new(base_cfg()).train(&corpus()));
    let tiny = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1102).generate(300);
    let report = darwin::run_darwin(&model, &online(), &tiny, &cache());
    assert_eq!(report.metrics.requests, 300);
    assert!(report.epochs.is_empty(), "no identification should have happened");
}

#[test]
fn out_of_distribution_traffic_class_is_survivable() {
    // Deploy on a Web-class trace the model never trained on. Darwin must
    // stay above the worst static expert (its measurements are real even if
    // its cluster lookup and predictors are extrapolating).
    let model = Arc::new(OfflineTrainer::new(base_cfg()).train(&corpus()));
    let test = TraceGenerator::new(MixSpec::single(TrafficClass::web()), 1103).generate(20_000);
    let d = darwin::run_darwin(&model, &online(), &test, &cache()).metrics.hoc_ohr();
    let (worst, _) = worst_and_best_static(&test);
    assert!(d >= worst * 0.9, "OOD traffic sank darwin ({d:.4}) below worst static ({worst:.4})");
}

#[test]
fn flash_crowd_mid_epoch_does_not_crash_or_zero_out() {
    let model = Arc::new(OfflineTrainer::new(base_cfg()).train(&corpus()));
    let base = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        1104,
    )
    .generate(20_000);
    let crowd = flash_crowd(&base, 0.3, 0.6, 0.7, 2 * 1024 * 1024, 5);
    let report = darwin::run_darwin(&model, &online(), &crowd, &cache());
    assert_eq!(report.metrics.requests as usize, crowd.len());
    // The hot object is highly cacheable: OHR should not collapse.
    assert!(report.metrics.hoc_ohr() > 0.05);
}

#[test]
fn popularity_drift_is_survivable() {
    let model = Arc::new(OfflineTrainer::new(base_cfg()).train(&corpus()));
    let base = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 1105).generate(20_000);
    let drifted = drift_popularity(&base, 0.6, 6);
    let report = darwin::run_darwin(&model, &online(), &drifted, &cache());
    assert_eq!(report.metrics.requests as usize, drifted.len());
    assert!(report.metrics.hoc_ohr() > 0.0);
}

#[test]
fn model_file_roundtrip_and_footprint() {
    let model = OfflineTrainer::new(base_cfg()).train(&corpus());
    let path = std::env::temp_dir().join("darwin-robustness-model.json");
    model.save_to_file(&path).expect("save");
    let loaded = DarwinModel::load_from_file(&path).expect("load");
    assert_eq!(model.num_clusters(), loaded.num_clusters());
    assert!(model.memory_footprint_bytes() > 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_model_file_is_an_error_not_a_panic() {
    let path = std::env::temp_dir().join("darwin-corrupt-model.json");
    std::fs::write(&path, "{ not json ").unwrap();
    assert!(DarwinModel::load_from_file(&path).is_err());
    let _ = std::fs::remove_file(&path);
}
