//! End-to-end integration: offline training → model serialization → online
//! adaptation, across all crates.

use darwin::prelude::*;
use darwin_nn::TrainConfig;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::Arc;

const HOC: u64 = 4 * 1024 * 1024;

fn cache() -> CacheConfig {
    CacheConfig { hoc_bytes: HOC, dc_bytes: 256 * 1024 * 1024, ..CacheConfig::paper_default() }
}

fn small_grid() -> darwin::ExpertGrid {
    darwin::ExpertGrid::new(vec![
        Expert::new(1, 20),
        Expert::new(1, 500),
        Expert::new(4, 20),
        Expert::new(4, 500),
        Expert::new(7, 100),
    ])
}

fn corpus(len: usize) -> Vec<Trace> {
    (0..6)
        .map(|i| {
            let mix =
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 5.0);
            TraceGenerator::new(mix, 300 + i as u64).generate(len)
        })
        .collect()
}

fn offline_cfg() -> darwin::OfflineConfig {
    darwin::OfflineConfig {
        grid: small_grid(),
        hoc_bytes: HOC,
        nn_train: TrainConfig { epochs: 60, ..TrainConfig::default() },
        n_clusters: 3,
        feature_prefix_requests: 1_000,
        ..darwin::OfflineConfig::default()
    }
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig {
        epoch_requests: 25_000,
        warmup_requests: 1_000,
        round_requests: 400,
        ..OnlineConfig::default()
    }
}

#[test]
fn offline_online_pipeline_runs_and_adapts() {
    let trainer = OfflineTrainer::new(offline_cfg());
    let model = Arc::new(trainer.train(&corpus(20_000)));

    // Held-out download-heavy traffic.
    let test = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.2),
        901,
    )
    .generate(25_000);
    let report = darwin::run_darwin(&model, &online_cfg(), &test, &cache());

    assert_eq!(report.metrics.requests as usize, test.len());
    assert!(!report.epochs.is_empty(), "at least one epoch summary");
    let ep = &report.epochs[0];
    assert!(ep.set_size >= 1 && ep.set_size <= 5);
    assert!(ep.chosen_expert < 5);
    assert!(report.metrics.hoc_ohr() > 0.0);
}

#[test]
fn darwin_close_to_hindsight_best_static() {
    let trainer = OfflineTrainer::new(offline_cfg());
    let traces = corpus(20_000);
    let model = Arc::new(trainer.train(&traces));

    let test = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        902,
    )
    .generate(25_000);

    let darwin_ohr = darwin::run_darwin(&model, &online_cfg(), &test, &cache()).metrics.hoc_ohr();
    let static_ohrs: Vec<f64> = small_grid()
        .experts()
        .iter()
        .map(|e| darwin::run_static(*e, &test, &cache()).hoc_ohr())
        .collect();
    let best = static_ohrs.iter().cloned().fold(f64::MIN, f64::max);
    let worst = static_ohrs.iter().cloned().fold(f64::MAX, f64::min);

    assert!(darwin_ohr >= worst, "darwin {darwin_ohr} below the worst static {worst}");
    // Close to hindsight-best: warm-up + exploration must cost < 20 %
    // relative at this small scale.
    assert!(darwin_ohr >= best * 0.8, "darwin {darwin_ohr} too far below hindsight best {best}");
}

#[test]
fn serialized_model_behaves_identically() {
    let trainer = OfflineTrainer::new(offline_cfg());
    let model = trainer.train(&corpus(15_000));
    let restored = DarwinModel::from_json(&model.to_json()).expect("roundtrip");

    let test = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 903).generate(20_000);
    let a = darwin::run_darwin(&Arc::new(model), &online_cfg(), &test, &cache());
    let b = darwin::run_darwin(&Arc::new(restored), &online_cfg(), &test, &cache());

    assert_eq!(a.metrics, b.metrics, "restored model must drive identical decisions");
    assert_eq!(a.final_expert, b.final_expert);
}

#[test]
fn epoch_rollover_reidentifies_after_traffic_shift() {
    let trainer = OfflineTrainer::new(offline_cfg());
    let model = Arc::new(trainer.train(&corpus(20_000)));

    // Phase 1 image-heavy, phase 2 download-heavy — one epoch each.
    let p1 = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.95),
        904,
    )
    .generate(25_000);
    let p2 = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.05),
        905,
    )
    .generate(25_000);
    let workload = darwin_trace::concat_traces(&[p1, p2]);

    let report = darwin::run_darwin(&model, &online_cfg(), &workload, &cache());
    assert!(report.epochs.len() >= 2, "two epochs expected, got {}", report.epochs.len());
}

#[test]
fn cluster_sets_cover_online_best_experts() {
    // Appendix A.3's check: "at least one of the trace's best experts is
    // always included in its corresponding expert set".
    let trainer = OfflineTrainer::new(offline_cfg());
    let traces = corpus(20_000);
    let evals = trainer.evaluate_corpus(&traces);
    let model = trainer.train_from_evaluations(&evals);

    let mut covered = 0;
    for ev in &evals {
        let cluster = model.lookup_cluster(&ev.features);
        let set = model.expert_set(cluster);
        let near_best = ev.best_expert_set(1.0);
        if near_best.iter().any(|e| set.contains(e)) {
            covered += 1;
        }
    }
    assert!(
        covered >= evals.len() - 1,
        "cluster sets cover best experts for only {covered}/{} training traces",
        evals.len()
    );
}
