//! End-to-end pipeline with three-knob experts (frequency, size, recency) —
//! the §6/Fig 11 extension: "we also created experts with three decision
//! knobs … Darwin can be trivially extended to include other knobs."

use darwin::prelude::*;
use darwin_nn::TrainConfig;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::Arc;

const HOC: u64 = 4 * 1024 * 1024;

fn cache() -> CacheConfig {
    CacheConfig { hoc_bytes: HOC, dc_bytes: 256 * 1024 * 1024, ..CacheConfig::paper_default() }
}

fn three_knob_grid() -> darwin::ExpertGrid {
    darwin::ExpertGrid::new(vec![
        Expert::with_recency(1, 100, 10),
        Expert::with_recency(1, 100, 600),
        Expert::with_recency(5, 100, 10),
        Expert::with_recency(5, 100, 600),
        Expert::with_recency(1, 500, 600),
        Expert::with_recency(5, 500, 600),
    ])
}

fn corpus() -> Vec<Trace> {
    (0..5)
        .map(|i| {
            TraceGenerator::new(
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 4.0),
                1200 + i as u64,
            )
            .generate(15_000)
        })
        .collect()
}

#[test]
fn three_knob_pipeline_end_to_end() {
    let cfg = darwin::OfflineConfig {
        grid: three_knob_grid(),
        hoc_bytes: HOC,
        nn_train: TrainConfig { epochs: 50, ..TrainConfig::default() },
        n_clusters: 2,
        feature_prefix_requests: 700,
        ..darwin::OfflineConfig::default()
    };
    let trainer = OfflineTrainer::new(cfg);
    let model = Arc::new(trainer.train(&corpus()));

    // Every cluster set refers to valid 3-knob experts.
    for c in 0..model.num_clusters() {
        for &e in model.expert_set(c) {
            assert!(model.grid().get(e).policy.max_recency_us.is_some());
        }
    }

    let online = OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 700,
        round_requests: 400,
        ..OnlineConfig::default()
    };
    let test = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.35),
        1299,
    )
    .generate(20_000);
    let report = darwin::run_darwin(&model, &online, &test, &cache());
    assert_eq!(report.metrics.requests as usize, test.len());

    // Darwin must stay at or above the worst three-knob static expert.
    let worst = three_knob_grid()
        .experts()
        .iter()
        .map(|e| darwin::run_static(*e, &test, &cache()).hoc_ohr())
        .fold(f64::MAX, f64::min);
    assert!(
        report.metrics.hoc_ohr() >= worst * 0.95,
        "darwin {} below worst 3-knob static {}",
        report.metrics.hoc_ohr(),
        worst
    );
}

#[test]
fn recency_knob_changes_behaviour() {
    // A tight recency threshold must admit strictly fewer objects than a
    // loose one, everything else equal.
    let trace = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 1301).generate(15_000);
    let tight = darwin::run_static(Expert::with_recency(1, 500, 1), &trace, &cache());
    let loose = darwin::run_static(Expert::with_recency(1, 500, 3600), &trace, &cache());
    assert!(
        tight.hoc_writes < loose.hoc_writes,
        "tight recency admitted {} ≥ loose {}",
        tight.hoc_writes,
        loose.hoc_writes
    );
}

#[test]
fn timeline_tracks_adaptation() {
    let cfg = darwin::OfflineConfig {
        grid: three_knob_grid(),
        hoc_bytes: HOC,
        nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
        n_clusters: 2,
        feature_prefix_requests: 700,
        ..darwin::OfflineConfig::default()
    };
    let model = Arc::new(OfflineTrainer::new(cfg).train(&corpus()));
    let online = OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 700,
        round_requests: 400,
        ..OnlineConfig::default()
    };
    let test = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 1302).generate(20_000);
    let report = darwin::runner::run_darwin_with_timeline(&model, &online, &test, &cache(), 2_000);
    assert_eq!(report.timeline.len(), 10);
    assert!(report.timeline.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(report.timeline.iter().all(|&(_, ohr)| (0.0..=1.0).contains(&ohr)));
}
