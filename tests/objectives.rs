//! Integration tests for objective flexibility (§6.3): the same pipeline
//! optimizing OHR, BMR and the combined disk-write objective.

use darwin::prelude::*;
use darwin_nn::TrainConfig;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::Arc;

const HOC: u64 = 4 * 1024 * 1024;

fn cache() -> CacheConfig {
    CacheConfig { hoc_bytes: HOC, dc_bytes: 256 * 1024 * 1024, ..CacheConfig::paper_default() }
}

fn corpus() -> Vec<Trace> {
    (0..6)
        .map(|i| {
            TraceGenerator::new(
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 5.0),
                700 + i as u64,
            )
            .generate(18_000)
        })
        .collect()
}

fn cfg(objective: Objective) -> darwin::OfflineConfig {
    darwin::OfflineConfig {
        grid: darwin::ExpertGrid::new(vec![
            Expert::new(1, 20),
            Expert::new(1, 500),
            Expert::new(5, 20),
            Expert::new(5, 500),
        ]),
        objective,
        hoc_bytes: HOC,
        nn_train: TrainConfig { epochs: 50, ..TrainConfig::default() },
        n_clusters: 3,
        feature_prefix_requests: 800,
        ..darwin::OfflineConfig::default()
    }
}

#[test]
fn one_evaluation_pass_serves_all_objectives() {
    let trainer = OfflineTrainer::new(cfg(Objective::HocOhr));
    let evals = trainer.evaluate_corpus(&corpus());
    for ev in &evals {
        let ohr_rewards = ev.rewards_under(Objective::HocOhr);
        let bmr_rewards = ev.rewards_under(Objective::HocBmr);
        assert_eq!(ohr_rewards.len(), bmr_rewards.len());
        // OHR rewards must equal the recorded hit rates.
        for (r, &h) in ohr_rewards.iter().zip(&ev.hit_rates) {
            assert!((r - h).abs() < 1e-12);
        }
        // BMR rewards are byte-weighted and generally differ from OHR.
        assert!(bmr_rewards.iter().all(|r| (0.0..=1.0).contains(r)));
    }
}

#[test]
fn objective_changes_expert_ranking() {
    // The BMR-best expert weights bytes; on mixed traffic with small + large
    // objects it can differ from the OHR-best. At minimum the reward
    // *orderings* must not be identical on every trace (otherwise the
    // objective plumbing is inert).
    let trainer = OfflineTrainer::new(cfg(Objective::HocOhr));
    let evals = trainer.evaluate_corpus(&corpus());
    let mut any_difference = false;
    for ev in &evals {
        let ohr = ev.rewards_under(Objective::HocOhr);
        let bmr = ev.rewards_under(Objective::HocBmr);
        let order = |v: &[f64]| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
            idx
        };
        if order(&ohr) != order(&bmr) {
            any_difference = true;
        }
    }
    assert!(any_difference, "OHR and BMR rankings never differed across the corpus");
}

#[test]
fn bmr_trained_darwin_achieves_lower_bmr_than_ohr_trained() {
    let traces = corpus();
    let trainer_ohr = OfflineTrainer::new(cfg(Objective::HocOhr));
    let evals = trainer_ohr.evaluate_corpus(&traces);
    let model_ohr = Arc::new(trainer_ohr.train_from_evaluations(&evals));
    let trainer_bmr = OfflineTrainer::new(cfg(Objective::HocBmr));
    let model_bmr = Arc::new(trainer_bmr.train_from_evaluations(&evals));

    let online = OnlineConfig {
        epoch_requests: 25_000,
        warmup_requests: 800,
        round_requests: 400,
        ..OnlineConfig::default()
    };
    // Average over several held-out mixes (single traces are noisy at this
    // scale).
    let mut bmr_with_bmr_model = 0.0;
    let mut bmr_with_ohr_model = 0.0;
    for (i, share) in [0.25, 0.5, 0.75].iter().enumerate() {
        let test = TraceGenerator::new(
            MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), *share),
            950 + i as u64,
        )
        .generate(25_000);
        bmr_with_bmr_model += darwin::run_darwin(&model_bmr, &online, &test, &cache()).metrics.hoc_bmr();
        bmr_with_ohr_model += darwin::run_darwin(&model_ohr, &online, &test, &cache()).metrics.hoc_bmr();
    }
    assert!(
        bmr_with_bmr_model <= bmr_with_ohr_model * 1.05,
        "BMR-trained Darwin ({bmr_with_bmr_model:.4}) should not lose clearly to \
         OHR-trained ({bmr_with_ohr_model:.4}) on its own metric"
    );
}

#[test]
fn hit_rate_to_reward_conversion_is_monotone() {
    let trainer = OfflineTrainer::new(cfg(Objective::HocBmr));
    let model = trainer.train(&corpus());
    let trainer2 = OfflineTrainer::new(cfg(Objective::HocBmr));
    let ev = trainer2.evaluate_trace(
        &TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1).generate(10_000),
    );
    // Higher predicted hit rate must never reduce the reward, for any expert.
    for e in 0..4 {
        let lo = model.hit_rate_to_reward(e, 0.2, &ev.size_dist);
        let hi = model.hit_rate_to_reward(e, 0.6, &ev.size_dist);
        assert!(hi >= lo, "expert {e}: reward not monotone in hit rate");
    }
}
