//! Integration tests for the bandit theory claims (§4.2, Theorems 1–2).

use darwin_bandit::{
    ClassicalTrackAndStop, GaussianEnv, SideInfo, SuccessiveElimination, TasConfig, TrackAndStopSideInfo,
};

fn cfg() -> TasConfig {
    TasConfig { stability_rounds: None, max_rounds: 100_000, ..TasConfig::default() }
}

#[test]
fn delta_soundness_empirically_holds() {
    // δ = 0.1 over 60 runs on a moderately hard instance: error count must
    // stay well below the binomial tail (mean 6, 3σ ≈ 13).
    let mu = vec![0.56, 0.50, 0.46, 0.42];
    let sigma = SideInfo::two_level(4, 0.06, 0.12);
    let mut errors = 0;
    for seed in 0..60 {
        let mut env = GaussianEnv::new(mu.clone(), sigma.clone(), seed);
        let (arm, _, _) = TrackAndStopSideInfo::new(sigma.clone(), 0.1, cfg()).run(|a| env.pull(a));
        if arm != 0 {
            errors += 1;
        }
    }
    assert!(errors <= 13, "{errors} errors in 60 runs at delta = 0.1");
}

#[test]
fn side_info_rounds_flat_in_k_classical_grows() {
    // The headline Theorem 2 contrast. Gaps held fixed while K grows.
    let seeds = 6u64;
    let mean_rounds = |k: usize, side_info: bool| -> f64 {
        let mu: Vec<f64> = (0..k).map(|i| if i == 0 { 0.6 } else { 0.48 }).collect();
        let sigma = SideInfo::two_level(k, 0.05, 0.08);
        let mut total = 0usize;
        for seed in 0..seeds {
            if side_info {
                let mut env = GaussianEnv::new(mu.clone(), sigma.clone(), seed);
                total += TrackAndStopSideInfo::new(sigma.clone(), 0.05, cfg()).run(|a| env.pull(a)).1;
            } else {
                let mut env = GaussianEnv::new(mu.clone(), sigma.clone(), 70 + seed);
                total +=
                    ClassicalTrackAndStop::homoscedastic(k, 0.05, 0.05, cfg()).run(|a| env.pull(a)[a]).1;
            }
        }
        total as f64 / seeds as f64
    };

    let si_small = mean_rounds(3, true);
    let si_large = mean_rounds(24, true);
    let cl_small = mean_rounds(3, false);
    let cl_large = mean_rounds(24, false);

    // Classical grows substantially with K.
    assert!(cl_large > cl_small * 2.0, "classical rounds failed to grow: {cl_small} -> {cl_large}");
    // Side information grows far slower than classical's growth factor.
    let si_growth = si_large / si_small;
    let cl_growth = cl_large / cl_small;
    assert!(
        si_growth < cl_growth / 1.5,
        "side-info growth {si_growth:.2} not clearly flatter than classical {cl_growth:.2}"
    );
}

#[test]
fn information_level_grows_and_crosses_threshold() {
    let sigma = SideInfo::uniform(3, 0.05);
    let mut env = GaussianEnv::new(vec![0.7, 0.5, 0.3], sigma.clone(), 11);
    let mut tas = TrackAndStopSideInfo::new(sigma, 0.05, cfg());
    let mut last_z = 0.0;
    let mut grew = 0;
    while !tas.finished() {
        let arm = tas.next_arm();
        let y = env.pull(arm);
        tas.observe(arm, &y);
        let z = tas.information_level();
        if z > last_z {
            grew += 1;
        }
        last_z = z;
    }
    assert!(grew >= 2, "information level never grew");
    assert!(tas.information_level() >= tas.threshold(), "stopped without crossing the threshold");
}

#[test]
fn successive_elimination_agrees_with_tas() {
    let mu = [0.7, 0.55, 0.4];
    let sigma = SideInfo::uniform(3, 0.05);
    let mut env = GaussianEnv::new(mu.to_vec(), sigma.clone(), 5);
    let (tas_arm, _, _) = TrackAndStopSideInfo::new(sigma, 0.05, cfg()).run(|a| env.pull(a));

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(6);
    let (se_arm, _) = SuccessiveElimination::new(3, 0.05, 0.05, 100_000).run(|a| {
        let z: f64 = rng.sample(rand_distr::StandardNormal);
        mu[a] + 0.05 * z
    });
    assert_eq!(tas_arm, se_arm);
    assert_eq!(tas_arm, 0);
}

#[test]
fn noisier_side_information_costs_rounds() {
    let mu = vec![0.6, 0.5, 0.45];
    let seeds = 8u64;
    let run_with = |cross: f64, base: u64| -> usize {
        let sigma = SideInfo::two_level(3, 0.05, cross);
        let mut total = 0;
        for seed in 0..seeds {
            let mut env = GaussianEnv::new(mu.clone(), sigma.clone(), base + seed);
            total += TrackAndStopSideInfo::new(sigma.clone(), 0.05, cfg()).run(|a| env.pull(a)).1;
        }
        total
    };
    let sharp = run_with(0.07, 0);
    let noisy = run_with(0.5, 100);
    assert!(noisy > sharp, "noisy side info ({noisy}) should need more rounds than sharp ({sharp})");
}
