//! Integration tests for the baseline implementations and their qualitative
//! relationships to Darwin (§6.1).

use darwin::prelude::*;
use darwin_baselines::{AdaptSize, DirectMapping, HillClimbing, Percentile};
use darwin_nn::TrainConfig;
use darwin_trace::{concat_traces, MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::Arc;

const HOC: u64 = 4 * 1024 * 1024;

fn cache() -> CacheConfig {
    CacheConfig { hoc_bytes: HOC, dc_bytes: 256 * 1024 * 1024, ..CacheConfig::paper_default() }
}

fn grid() -> darwin::ExpertGrid {
    darwin::ExpertGrid::new(vec![
        Expert::new(1, 20),
        Expert::new(1, 500),
        Expert::new(4, 20),
        Expert::new(4, 500),
        Expert::new(7, 100),
    ])
}

fn shifting_workload() -> Trace {
    let a = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.9),
        41,
    )
    .generate(20_000);
    let b = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.1),
        42,
    )
    .generate(20_000);
    concat_traces(&[a, b])
}

#[test]
fn every_baseline_processes_the_full_workload() {
    let w = shifting_workload();
    let n = w.len() as u64;

    assert_eq!(Percentile::new(grid(), 5_000).run(&w, &cache()).requests, n);
    assert_eq!(
        HillClimbing::new(ThresholdPolicy::new(4, 100 * 1024), 10 * 1024, 4_000)
            .run(&w, &cache())
            .requests,
        n
    );
    assert_eq!(AdaptSize::new(5_000, 1).run(&w, &cache()).requests, n);
}

#[test]
fn darwin_competitive_with_all_baselines_on_shifting_traffic() {
    // Train Darwin on the mixes the workload is drawn from.
    let corpus: Vec<Trace> = (0..6)
        .map(|i| {
            TraceGenerator::new(
                MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 5.0),
                500 + i as u64,
            )
            .generate(20_000)
        })
        .collect();
    let offline = darwin::OfflineConfig {
        grid: grid(),
        hoc_bytes: HOC,
        nn_train: TrainConfig { epochs: 60, ..TrainConfig::default() },
        n_clusters: 3,
        feature_prefix_requests: 800,
        ..darwin::OfflineConfig::default()
    };
    let trainer = OfflineTrainer::new(offline);
    let evals = trainer.evaluate_corpus(&corpus);
    let model = Arc::new(trainer.train_from_evaluations(&evals));

    let w = shifting_workload();
    let online = OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 800,
        round_requests: 400,
        ..OnlineConfig::default()
    };
    let darwin_ohr = darwin::run_darwin(&model, &online, &w, &cache()).metrics.hoc_ohr();

    let p = Percentile::new(grid(), 5_000).run(&w, &cache()).hoc_ohr();
    let hc = HillClimbing::new(ThresholdPolicy::new(4, 100 * 1024), 10 * 1024, 4_000)
        .run(&w, &cache())
        .hoc_ohr();
    let dm = DirectMapping::train(
        grid(),
        &evals,
        20_000,
        800,
        &TrainConfig { epochs: 120, ..TrainConfig::default() },
        3,
    )
    .run(&w, &cache())
    .hoc_ohr();

    // Darwin must at least match the weakest adaptive baseline and be within
    // striking distance of the strongest (shape claim, small-scale noise
    // tolerated).
    let weakest = p.min(hc).min(dm);
    let strongest = p.max(hc).max(dm);
    assert!(darwin_ohr >= weakest * 0.95, "darwin {darwin_ohr:.4} below weakest baseline {weakest:.4}");
    assert!(
        darwin_ohr >= strongest * 0.8,
        "darwin {darwin_ohr:.4} far below strongest baseline {strongest:.4}"
    );
}

#[test]
fn hillclimbing_converges_near_local_optimum_on_stationary_traffic() {
    let w = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 77).generate(30_000);
    let start = ThresholdPolicy::new(6, 20 * 1024); // far from optimal
    let hc = HillClimbing::new(start, 20 * 1024, 3_000).run(&w, &cache());
    let stay = {
        let mut s = CacheServer::new(cache());
        s.set_policy(start);
        s.process_trace(&w)
    };
    assert!(hc.hoc_ohr() >= stay.hoc_ohr(), "climber should not end worse than start");
}

#[test]
fn adaptsize_beats_naive_admit_all_under_scan_pollution() {
    // Image traffic carries a 50 % one-hit-wonder scan; tuned probabilistic
    // size admission must beat always-admit (which churns on the scan).
    let w = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 78).generate(30_000);
    let adaptsize = AdaptSize::new(5_000, 2).run(&w, &cache());
    let always = {
        let mut s = CacheServer::new(cache());
        s.set_policy(darwin_cache::policy::AlwaysAdmit);
        s.process_trace(&w)
    };
    assert!(
        adaptsize.hoc_ohr() >= always.hoc_ohr() * 0.95,
        "adaptsize {:.4} should be at least comparable to admit-all {:.4}",
        adaptsize.hoc_ohr(),
        always.hoc_ohr()
    );
}

#[test]
fn percentile_tracks_the_traffic_mix() {
    // On download-heavy traffic the 90th size percentile is large, so the
    // Percentile baseline must end up on a large-s expert.
    let w = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 79).generate(20_000);
    let p = Percentile::new(grid(), 4_000);
    let m = p.run(&w, &cache());
    // Behavioural check: it must clearly beat the smallest-s expert, which
    // a download mix starves.
    let small = darwin::run_static(Expert::new(4, 20), &w, &cache()).hoc_ohr();
    assert!(m.hoc_ohr() > small, "percentile {:.4} <= strict static {small:.4}", m.hoc_ohr());
}
